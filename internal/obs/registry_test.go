package obs

import (
	"strings"
	"testing"
)

// TestHistogramBucketMath pins the bucket arithmetic: observations land
// in the first bucket whose upper bound is >= the value (le is
// inclusive), the exposition's buckets are cumulative, and sum/count
// agree with what was observed.
func TestHistogramBucketMath(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.5, 1})
	for _, v := range []float64{0.05, 0.1, 0.3, 0.5, 0.7, 2, 3} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.3+0.5+0.7+2+3; got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	// Raw (non-cumulative) buckets: le=0.1 gets {0.05, 0.1}, le=0.5 gets
	// {0.3, 0.5}, le=1 gets {0.7}, +Inf gets {2, 3}.
	for i, want := range []int64{2, 2, 1, 2} {
		if got := h.buckets[i].Load(); got != want {
			t.Errorf("bucket %d = %d, want %d", i, got, want)
		}
	}

	var b strings.Builder
	if err := h.writeSamples(&b, "m", ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`m_bucket{le="0.1"} 2`,
		`m_bucket{le="0.5"} 4`,
		`m_bucket{le="1"} 5`,
		`m_bucket{le="+Inf"} 7`,
		`m_count 7`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, b.String())
		}
	}
}

// TestExpositionFormat drives one of each family kind through a
// registry and checks the rendered text: HELP/TYPE pairs, sorted
// families, sorted label sets, escaping.
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_plain_total", "A plain counter.")
	c.Add(3)
	v := r.CounterVec("aa_labeled_total", "A labeled counter.", "route", "code")
	v.With("suites", "200").Add(2)
	v.With("eval", "200").Inc()
	r.GaugeFunc("mm_gauge", "A gauge.", func() int64 { return 42 })
	hv := r.HistogramVec("hh_seconds", "A histogram.", []float64{0.5, 1}, "route")
	hv.With("eval").Observe(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	// Families render sorted by name: aa < hh < mm < zz.
	order := []string{"aa_labeled_total", "hh_seconds", "mm_gauge", "zz_plain_total"}
	last := -1
	for _, name := range order {
		i := strings.Index(text, "# HELP "+name)
		if i < 0 {
			t.Fatalf("missing family %s:\n%s", name, text)
		}
		if i < last {
			t.Errorf("family %s out of sorted order", name)
		}
		last = i
	}
	for _, want := range []string{
		"# TYPE aa_labeled_total counter\n",
		`aa_labeled_total{route="eval",code="200"} 1`,
		`aa_labeled_total{route="suites",code="200"} 2`,
		"# TYPE mm_gauge gauge\nmm_gauge 42\n",
		"zz_plain_total 3\n",
		"# TYPE hh_seconds histogram\n",
		`hh_seconds_bucket{route="eval",le="0.5"} 1`,
		`hh_seconds_bucket{route="eval",le="+Inf"} 1`,
		`hh_seconds_sum{route="eval"} 0.25`,
		`hh_seconds_count{route="eval"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// eval sorts before suites within the family.
	if strings.Index(text, `{route="eval",code="200"}`) > strings.Index(text, `{route="suites",code="200"}`) {
		t.Errorf("label sets not sorted:\n%s", text)
	}
}

// TestLabelEscaping: quotes, backslashes, and newlines in label values
// must be escaped per the exposition format.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "Escaping.", "k")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `esc_total{k="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, b.String())
	}
}

// TestDuplicateRegistrationPanics: metric names are API; registering
// one twice is a programming error caught at construction.
func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "y")
}

// TestGaugeVec pins the labeled-gauge exposition: children sort by label
// value, Set moves both ways, and the TYPE line says gauge.
func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("breaker_state", "per-tool breaker state", "tool")
	v.With("qmap").Set(2)
	v.With("tket").Set(1)
	v.With("qmap").Set(0) // gauges move both ways
	v.With("tket").Add(-1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"# TYPE breaker_state gauge",
		`breaker_state{tool="qmap"} 0`,
		`breaker_state{tool="tket"} 0`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q:\n%s", want, got)
		}
	}
	if strings.Index(got, `tool="qmap"`) > strings.Index(got, `tool="tket"`) {
		t.Error("gauge children not sorted by label value")
	}
}
