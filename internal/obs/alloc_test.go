package obs

import (
	"testing"
)

// The obs core's contract is that recording telemetry in steady state
// allocates nothing — the same 0 B/op discipline the router decision
// loops and the SAT solve loop are held to. These gates run as plain
// tests (CI's bench-smoke job runs them too) so a regression fails
// loudly, not just in a benchmark diff.

// TestSpanRecordingAllocs: beginning a span, attaching args, and ending
// it on a warm trace must not allocate.
func TestSpanRecordingAllocs(t *testing.T) {
	tr := New(1 << 12)
	// Warm up: first span may grow the free list.
	sp := tr.Root("eval", "cell")
	sp.End()
	avg := testing.AllocsPerRun(1000, func() {
		sp := tr.Root("eval", "cell")
		sp.Arg("tool", "lightsabre")
		sp.Arg("outcome", "ok")
		sp.ArgInt("optimal", 5)
		sp.End()
	})
	if avg != 0 {
		t.Errorf("span record allocates %.1f allocs/op, want 0", avg)
	}
}

// TestCounterAllocs: incrementing a counter through a cached vec handle
// must not allocate.
func TestCounterAllocs(t *testing.T) {
	r := NewRegistry()
	plain := r.Counter("alloc_plain_total", "x")
	vec := r.CounterVec("alloc_vec_total", "x", "result")
	handle := vec.With("hit")
	avg := testing.AllocsPerRun(1000, func() {
		plain.Inc()
		handle.Add(2)
	})
	if avg != 0 {
		t.Errorf("counter add allocates %.1f allocs/op, want 0", avg)
	}
}

// TestHistogramAllocs: observing into a histogram must not allocate.
func TestHistogramAllocs(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc_hist_seconds", "x", nil)
	avg := testing.AllocsPerRun(1000, func() {
		h.Observe(0.042)
	})
	if avg != 0 {
		t.Errorf("histogram observe allocates %.1f allocs/op, want 0", avg)
	}
}

// BenchmarkSpanRecord is the -benchmem view of the same contract, for
// the bench-smoke job's 0 B/op re-check.
func BenchmarkSpanRecord(b *testing.B) {
	tr := New(1 << 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Root("eval", "cell")
		sp.Arg("tool", "lightsabre")
		sp.End()
	}
}
