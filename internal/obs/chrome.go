package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChrome exports the trace as Chrome trace-event JSON — the format
// chrome://tracing and ui.perfetto.dev load directly. Every span becomes
// one complete ("ph":"X") event with microsecond timestamps; events are
// sorted by start time then track, and fields are emitted in a fixed
// order, so the output is deterministic for a deterministic trace
// (pinned by the golden test).
func (tr *Trace) WriteChrome(w io.Writer) error {
	tr.mu.Lock()
	recs := make([]record, len(tr.recs))
	copy(recs, tr.recs)
	tr.mu.Unlock()

	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].start != recs[j].start {
			return recs[i].start < recs[j].start
		}
		return recs[i].tid < recs[j].tid
	})

	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i := range recs {
		r := &recs[i]
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := writeEvent(w, r); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, `],"displayTimeUnit":"ms"}`+"\n")
	return err
}

// writeEvent emits one complete event with a fixed field order:
// name, cat, ph, ts, dur, pid, tid, args.
func writeEvent(w io.Writer, r *record) error {
	name, err := json.Marshal(r.name)
	if err != nil {
		return err
	}
	cat, err := json.Marshal(r.cat)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `{"name":%s,"cat":%s,"ph":"X","ts":%s,"dur":%s,"pid":1,"tid":%d`,
		name, cat, micros(r.start), micros(r.dur), r.tid); err != nil {
		return err
	}
	if r.nargs > 0 {
		if _, err := io.WriteString(w, `,"args":{`); err != nil {
			return err
		}
		for i := 0; i < int(r.nargs); i++ {
			a := &r.args[i]
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			key, err := json.Marshal(a.Key)
			if err != nil {
				return err
			}
			if a.IsInt {
				_, err = fmt.Fprintf(w, "%s:%d", key, a.Int)
			} else {
				var val []byte
				if val, err = json.Marshal(a.Str); err == nil {
					_, err = fmt.Fprintf(w, "%s:%s", key, val)
				}
			}
			if err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}"); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "}")
	return err
}

// micros renders nanoseconds as decimal microseconds with fixed
// three-digit precision, the unit the trace-event format expects.
func micros(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
}
