package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// SummaryRow aggregates every recorded span sharing one (category,
// name, tool) triple; Tool is the span's "tool" arg when present, empty
// otherwise. Durations are wall time as each worker saw it, so the
// Total of concurrent spans can exceed the run's elapsed time.
type SummaryRow struct {
	Cat   string
	Name  string
	Tool  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean is the average span duration of the row.
func (r SummaryRow) Mean() time.Duration {
	if r.Count == 0 {
		return 0
	}
	return r.Total / time.Duration(r.Count)
}

// Summary aggregates the trace buffer into per-(category, name, tool)
// wall-time rows, sorted by category, name, then tool — the shape the
// qubikos-eval end-of-run table prints.
func (tr *Trace) Summary() []SummaryRow {
	tr.mu.Lock()
	recs := make([]record, len(tr.recs))
	copy(recs, tr.recs)
	tr.mu.Unlock()

	type key struct{ cat, name, tool string }
	agg := map[key]*SummaryRow{}
	for i := range recs {
		r := &recs[i]
		k := key{cat: r.cat, name: r.name}
		for j := 0; j < int(r.nargs); j++ {
			if r.args[j].Key == "tool" && !r.args[j].IsInt {
				k.tool = r.args[j].Str
				break
			}
		}
		row := agg[k]
		if row == nil {
			row = &SummaryRow{Cat: k.cat, Name: k.name, Tool: k.tool}
			agg[k] = row
		}
		row.Count++
		d := time.Duration(r.dur)
		row.Total += d
		if d > row.Max {
			row.Max = d
		}
	}
	out := make([]SummaryRow, 0, len(agg))
	for _, row := range agg {
		out = append(out, *row)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Tool < out[j].Tool
	})
	return out
}

// RenderSummary prints summary rows as an aligned table.
func RenderSummary(w io.Writer, rows []SummaryRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-10s %-14s %-12s %7s %12s %12s %12s\n",
		"phase", "span", "tool", "count", "total", "mean", "max")
	for _, r := range rows {
		tool := r.Tool
		if tool == "" {
			tool = "-"
		}
		fmt.Fprintf(w, "%-10s %-14s %-12s %7d %12v %12v %12v\n",
			r.Cat, r.Name, tool, r.Count,
			r.Total.Round(time.Microsecond),
			r.Mean().Round(time.Microsecond),
			r.Max.Round(time.Microsecond))
	}
}
