package obs

import (
	"context"
	"sync"
	"time"
)

// maxSpanArgs is the fixed per-span label capacity. Spans carry at most
// this many key/value args; extra ones are dropped silently. Six covers
// every call site in the repository (a harness cell attaches tool,
// instance, outcome and three router counters) without ever allocating
// a map.
const maxSpanArgs = 6

// Arg is one span label: a key with either a string or an integer value.
type Arg struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// record is one completed span in the trace buffer. It is a fixed-size
// value so appending it never allocates.
type record struct {
	name  string
	cat   string
	start int64 // nanoseconds since the trace anchor
	dur   int64 // nanoseconds
	tid   int32
	nargs int8
	args  [maxSpanArgs]Arg
}

// Trace accumulates completed spans in a preallocated ring buffer over
// one monotonic clock. A Trace is safe for concurrent use; once the
// buffer is full the oldest records are overwritten and Dropped counts
// the loss, so a long run degrades to "most recent window" instead of
// growing without bound.
type Trace struct {
	t0  time.Time
	now func() int64 // nanoseconds since t0; swappable for golden tests

	mu       sync.Mutex
	recs     []record
	head     int // next overwrite position once the ring is full
	dropped  int64
	freeTids []int32
	nextTid  int32
}

// DefaultCapacity is the record capacity New(0) preallocates: 64 Ki
// records ≈ 20 MiB, enough for every (tool, instance) cell of the
// largest paper sweep with room for store and phase spans.
const DefaultCapacity = 1 << 16

// New returns an empty trace with a preallocated buffer of the given
// record capacity (0 means DefaultCapacity). The monotonic clock is
// anchored at the call.
func New(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	tr := &Trace{
		t0:       time.Now(),
		recs:     make([]record, 0, capacity),
		freeTids: make([]int32, 0, 64),
		nextTid:  1,
	}
	tr.now = func() int64 { return time.Since(tr.t0).Nanoseconds() }
	return tr
}

// Dropped reports how many records have been overwritten because the
// ring filled up.
func (tr *Trace) Dropped() int64 {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dropped
}

// Len reports how many records the trace currently holds.
func (tr *Trace) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.recs)
}

func (tr *Trace) add(r record) {
	tr.mu.Lock()
	if len(tr.recs) < cap(tr.recs) {
		tr.recs = append(tr.recs, r)
	} else {
		tr.recs[tr.head] = r
		tr.head++
		if tr.head == len(tr.recs) {
			tr.head = 0
		}
		tr.dropped++
	}
	tr.mu.Unlock()
}

// acquireTid hands out a track id, reusing the lowest-water free list so
// sequential spans share tracks and only genuinely concurrent spans
// spread onto new ones.
func (tr *Trace) acquireTid() int32 {
	tr.mu.Lock()
	if n := len(tr.freeTids); n > 0 {
		tid := tr.freeTids[n-1]
		tr.freeTids = tr.freeTids[:n-1]
		tr.mu.Unlock()
		return tid
	}
	tid := tr.nextTid
	tr.nextTid++
	tr.mu.Unlock()
	return tid
}

func (tr *Trace) releaseTid(tid int32) {
	tr.mu.Lock()
	tr.freeTids = append(tr.freeTids, tid)
	tr.mu.Unlock()
}

// Span is one in-flight timed region. It is a plain value: the zero
// Span is inert (End and the arg setters are no-ops), which is what a
// Begin against a context with no trace returns — instrumented code
// needs no "is tracing on" branches of its own.
type Span struct {
	tr    *Trace
	name  string
	cat   string
	start int64
	tid   int32
	owns  bool // this span claimed its tid and must release it at End
	nargs int8
	args  [maxSpanArgs]Arg
}

// Root starts a top-level span on its own track.
func (tr *Trace) Root(cat, name string) Span {
	if tr == nil {
		return Span{}
	}
	return Span{tr: tr, cat: cat, name: name, start: tr.now(), tid: tr.acquireTid(), owns: true}
}

// child starts a span nested on an existing track.
func (tr *Trace) child(cat, name string, tid int32) Span {
	return Span{tr: tr, cat: cat, name: name, start: tr.now(), tid: tid}
}

// Arg attaches a string label to the span. Beyond maxSpanArgs labels it
// is dropped.
func (s *Span) Arg(key, val string) {
	if s.tr == nil || int(s.nargs) == maxSpanArgs {
		return
	}
	s.args[s.nargs] = Arg{Key: key, Str: val}
	s.nargs++
}

// ArgInt attaches an integer label to the span.
func (s *Span) ArgInt(key string, val int64) {
	if s.tr == nil || int(s.nargs) == maxSpanArgs {
		return
	}
	s.args[s.nargs] = Arg{Key: key, Int: val, IsInt: true}
	s.nargs++
}

// End completes the span, recording it into the trace buffer. Calling
// End on the zero Span is a no-op. The receiver is a pointer so that
// `defer sp.End()` observes args attached after the defer statement.
func (s *Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.add(record{
		name:  s.name,
		cat:   s.cat,
		start: s.start,
		dur:   s.tr.now() - s.start,
		tid:   s.tid,
		nargs: s.nargs,
		args:  s.args,
	})
	if s.owns {
		s.tr.releaseTid(s.tid)
	}
}

// ctxKey carries the *Trace through a context; trackKey carries the
// track id of the innermost open span so children nest onto it.
type ctxKey struct{}
type trackKey struct{}

// NewContext returns ctx carrying the trace. Instrumented layers reach
// it back out with FromContext or, more commonly, Begin.
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// FromContext returns the trace attached to ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// Begin starts a span on the trace attached to ctx. When ctx carries no
// trace the returned Span is inert and the context is returned
// unchanged — the instrumented path pays two context lookups and
// nothing else. When it does, the span nests under the innermost span
// already open on this context (same track), or claims a fresh track
// when it is the first; the returned context carries the track for any
// children. The caller must End the span.
func Begin(ctx context.Context, cat, name string) (Span, context.Context) {
	tr := FromContext(ctx)
	if tr == nil {
		return Span{}, ctx
	}
	if tid, ok := ctx.Value(trackKey{}).(int32); ok {
		return tr.child(cat, name, tid), ctx
	}
	sp := tr.Root(cat, name)
	return sp, context.WithValue(ctx, trackKey{}, sp.tid)
}
