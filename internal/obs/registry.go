package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds named metric families and renders them in the
// Prometheus text exposition format 0.0.4. Families are registered once
// (typically at construction of the component they describe); hot paths
// then hold the returned handles and record through atomics only.
// Registering the same name twice panics — metric names are API.
type Registry struct {
	mu       sync.Mutex
	families map[string]familyWriter
}

// familyWriter is one registered family's exposition.
type familyWriter interface {
	writeExposition(w io.Writer) error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]familyWriter{}}
}

func (r *Registry) register(name string, f familyWriter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic("obs: duplicate metric family " + name)
	}
	r.families[name] = f
}

// WritePrometheus renders every registered family, sorted by name, in
// the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]familyWriter, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.writeExposition(w); err != nil {
			return err
		}
	}
	return nil
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay a
// well-formed counter; this is not checked on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// counterFamily is an unlabeled counter family.
type counterFamily struct {
	name, help string
	c          *Counter
}

func (f *counterFamily) writeExposition(w io.Writer) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
		f.name, f.help, f.name, f.name, f.c.Value())
	return err
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, &counterFamily{name: name, help: help, c: c})
	return c
}

// funcFamily exposes a value computed at scrape time — the bridge for
// components that already keep their own counters (the suite store's
// Stats) or whose value is a property of current state (LRU residency).
type funcFamily struct {
	name, help, typ string
	fn              func() int64
}

func (f *funcFamily) writeExposition(w io.Writer) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n",
		f.name, f.help, f.name, f.typ, f.name, f.fn())
	return err
}

// CounterFunc registers a counter whose value is read at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, &funcFamily{name: name, help: help, typ: "counter", fn: fn})
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.register(name, &funcFamily{name: name, help: help, typ: "gauge", fn: fn})
}

// LabeledValue is one child sample returned by a *VecFunc callback.
type LabeledValue struct {
	// Values are the label values, matching the family's label names in
	// count and order.
	Values []string
	V      int64
}

// funcVecFamily exposes a labeled family whose children are computed at
// scrape time — the labeled sibling of funcFamily, for components that
// keep their own per-key counters (per-peer fetch stats, per-tool
// breaker states).
type funcVecFamily struct {
	name, help, typ string
	labels          []string
	fn              func() []LabeledValue
}

func (f *funcVecFamily) writeExposition(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
		return err
	}
	children := f.fn()
	sort.Slice(children, func(i, j int) bool {
		return lessValues(children[i].Values, children[j].Values)
	})
	for _, ch := range children {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, ch.Values), ch.V); err != nil {
			return err
		}
	}
	return nil
}

// CounterVecFunc registers a labeled counter family whose children are
// read at scrape time.
func (r *Registry) CounterVecFunc(name, help string, labels []string, fn func() []LabeledValue) {
	r.register(name, &funcVecFamily{name: name, help: help, typ: "counter", labels: labels, fn: fn})
}

// GaugeVecFunc registers a labeled gauge family whose children are read
// at scrape time.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func() []LabeledValue) {
	r.register(name, &funcVecFamily{name: name, help: help, typ: "gauge", labels: labels, fn: fn})
}

// CounterVec is a counter family with labels. With resolves one label
// combination to its *Counter handle; callers cache the handle so the
// per-event cost is a single atomic add.
type CounterVec struct {
	name, help string
	labels     []string

	mu       sync.Mutex
	children map[string]*vecChild
}

type vecChild struct {
	values []string
	c      Counter
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, children: map[string]*vecChild{}}
	r.register(name, v)
	return v
}

// With returns the counter for one label-value combination, creating it
// on first use. The values must match the registered label names in
// count and order.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[key]
	if !ok {
		ch = &vecChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return &ch.c
}

func (v *CounterVec) writeExposition(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name); err != nil {
		return err
	}
	v.mu.Lock()
	children := make([]*vecChild, 0, len(v.children))
	for _, ch := range v.children {
		children = append(children, ch)
	}
	v.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return lessValues(children[i].values, children[j].values)
	})
	for _, ch := range children {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", v.name, labelString(v.labels, ch.values), ch.c.Value()); err != nil {
			return err
		}
	}
	return nil
}

// Gauge is an atomic gauge: a value that can move both ways (breaker
// states, queue depths). Hot paths hold the handle and Set through a
// single atomic store.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeVec is a gauge family with labels. With resolves one label
// combination to its *Gauge handle; callers cache the handle so the
// per-event cost is a single atomic store.
type GaugeVec struct {
	name, help string
	labels     []string

	mu       sync.Mutex
	children map[string]*gaugeChild
}

type gaugeChild struct {
	values []string
	g      Gauge
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, labels: labels, children: map[string]*gaugeChild{}}
	r.register(name, v)
	return v
}

// With returns the gauge for one label-value combination, creating it
// on first use (initial value 0). The values must match the registered
// label names in count and order.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[key]
	if !ok {
		ch = &gaugeChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return &ch.g
}

func (v *GaugeVec) writeExposition(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", v.name, v.help, v.name); err != nil {
		return err
	}
	v.mu.Lock()
	children := make([]*gaugeChild, 0, len(v.children))
	for _, ch := range v.children {
		children = append(children, ch)
	}
	v.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return lessValues(children[i].values, children[j].values)
	})
	for _, ch := range children {
		if _, err := fmt.Fprintf(w, "%s%s %d\n", v.name, labelString(v.labels, ch.values), ch.g.Value()); err != nil {
			return err
		}
	}
	return nil
}

// DefLatencyBuckets are the default request-latency bucket bounds in
// seconds, matching the conventional Prometheus client defaults.
var DefLatencyBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram is a fixed-bucket histogram of float64 observations. Bucket
// counts, the total count, and the sum are all atomics; Observe
// allocates nothing.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// writeSamples emits the histogram's cumulative bucket, sum, and count
// samples with the given pre-rendered label prefix (e.g. `route="eval"`,
// or empty). The le label is appended to the prefix.
func (h *Histogram) writeSamples(w io.Writer, name, prefix string) error {
	cum := int64(0)
	sep := prefix
	if sep != "" {
		sep += ","
	}
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, cum); err != nil {
		return err
	}
	labels := ""
	if prefix != "" {
		labels = "{" + prefix + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
	return err
}

// histFamily is an unlabeled histogram family.
type histFamily struct {
	name, help string
	h          *Histogram
}

func (f *histFamily) writeExposition(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", f.name, f.help, f.name); err != nil {
		return err
	}
	return f.h.writeSamples(w, f.name, "")
}

// Histogram registers and returns an unlabeled histogram with the given
// ascending upper bounds (nil means DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	h := newHistogram(bounds)
	r.register(name, &histFamily{name: name, help: help, h: h})
	return h
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	name, help string
	labels     []string
	bounds     []float64

	mu       sync.Mutex
	children map[string]*histChild
}

type histChild struct {
	values []string
	h      *Histogram
}

// HistogramVec registers and returns a labeled histogram family (nil
// bounds means DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	v := &HistogramVec{name: name, help: help, labels: labels, bounds: bounds, children: map[string]*histChild{}}
	r.register(name, v)
	return v
}

// With returns the histogram for one label-value combination, creating
// it on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[key]
	if !ok {
		ch = &histChild{values: append([]string(nil), values...), h: newHistogram(v.bounds)}
		v.children[key] = ch
	}
	return ch.h
}

func (v *HistogramVec) writeExposition(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name); err != nil {
		return err
	}
	v.mu.Lock()
	children := make([]*histChild, 0, len(v.children))
	for _, ch := range v.children {
		children = append(children, ch)
	}
	v.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return lessValues(children[i].values, children[j].values)
	})
	for _, ch := range children {
		prefix := labelPairs(v.labels, ch.values)
		if err := ch.h.writeSamples(w, v.name, prefix); err != nil {
			return err
		}
	}
	return nil
}

// labelPairs renders `k1="v1",k2="v2"` with exposition-format escaping.
func labelPairs(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func labelString(labels, values []string) string {
	if len(labels) == 0 {
		return ""
	}
	return "{" + labelPairs(labels, values) + "}"
}

// escapeLabel applies the exposition format's label-value escaping.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func lessValues(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest float representation.
func formatBound(v float64) string {
	return formatFloat(v)
}

func formatFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}
