// Package obs is the repository's zero-dependency observability core:
// hierarchical wall-time spans recorded into a preallocated per-trace
// ring buffer, and a registry of named counters, gauges, and histograms
// with a Prometheus text exposition.
//
// The package exists because the evaluation pipeline's interesting
// questions — where does a sweep's wall time go, which tool dominates a
// cell, how hard did the SAT core work — are timing and counting
// questions, and answering them must not perturb the thing being
// measured. Both halves are therefore allocation-conscious by
// construction:
//
//   - A Span is a value type. Beginning and ending one on an existing
//     trace appends a fixed-size record into a buffer allocated when the
//     trace was created; the steady state allocates nothing (pinned by
//     TestSpanRecordingAllocs). When no trace is attached to the
//     context, Begin returns an inert zero Span whose End is a no-op, so
//     instrumented code paths cost a nil check when nobody is watching.
//   - Counters are single atomic words behind pre-resolved handles;
//     histograms are fixed bucket arrays of atomic words. Recording into
//     either allocates nothing (TestCounterAllocs, TestHistogramAllocs).
//
// Spans form trees by track: a root span claims a track id (tid) from a
// free list, children started from the same context share it, and
// Chrome's trace viewer (chrome://tracing, Perfetto) reconstructs the
// nesting from time containment per track. WriteChrome exports the
// whole buffer as Chrome trace-event JSON; Summary aggregates it into
// per-(category, name, tool) wall-time rows for terminal reporting.
//
// The Registry half replaces the hand-rolled exposition that used to
// live in internal/server: families are registered once (typed, with
// help text), hot paths hold *Counter handles, and WritePrometheus
// renders the text format 0.0.4 with sorted families and label sets.
package obs
