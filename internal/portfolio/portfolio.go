// Package portfolio races several quantum layout synthesis tools over
// one shared routing context under a deadline budget, returning the best
// validated result produced so far when the budget expires — anytime
// semantics: a deadline is a degradation, not an error, and an error is
// returned only when no tool produced a valid result at all.
//
// The scheduler layers three robustness mechanisms over the raw race:
//
//   - Fault isolation. Every racer runs in its own guarded goroutine
//     under the repository's cancellation contract: a hung tool is cut
//     off by its timeout, a panicking tool becomes a racer outcome (never
//     a crash), and every result is audited with router.Validate before
//     it may win — a lying tool can lose the race but never poison it.
//   - Win conditions. A validated result that matches the proven optimum,
//     or beats the configured threshold ratio against it, ends the race
//     immediately: the remaining racers are cancelled through their
//     contexts, exactly as the PR-6 contract promises.
//   - Staggered hedging. Cheap tools (low Tier) launch first; expensive
//     ones launch a configurable hedge delay per tier later, or
//     immediately once every launched racer has finished without a
//     winner. Racers share one pool.Budget so router-internal
//     parallelism never oversubscribes the host.
//
// Per-tool circuit breakers (BreakerSet) sit in front of the race:
// consecutive faulty outcomes trip a tool open so later races skip it,
// and a half-open probe re-admits it once it recovers.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"repro/internal/family"
	"repro/internal/obs"
	"repro/internal/pool"
	"repro/internal/router"
)

// Entry is one tool registered with a race.
type Entry struct {
	// Name identifies the tool in reports, spans, and breaker state.
	Name string
	// Make builds a fresh tool instance for this race (racers never share
	// a tool instance, so a stateful engine cannot leak between racers).
	Make func(seed int64) router.Router
	// Tier is the tool's hedge tier: tier T launches T*HedgeDelay after
	// the cheapest admitted tier. Equal tiers launch together.
	Tier int
}

// DefaultTier returns the hedge tier used for the repository's tools,
// ordered by measured cost (BENCH_routers.json): t|ket⟩ and ML-QLS are
// millisecond-class, LightSABRE hundreds of milliseconds, QMAP the most
// expensive. Unknown tools land in the middle.
func DefaultTier(tool string) int {
	switch tool {
	case "tket", "ml-qls":
		return 0
	case "lightsabre":
		return 1
	case "qmap":
		return 2
	}
	return 1
}

// Options tunes one race.
type Options struct {
	// Deadline bounds the whole race; when it fires the best validated
	// result so far is returned (ErrNoResult if there is none). 0 waits
	// for every racer.
	Deadline time.Duration
	// ToolTimeout bounds each individual racer; a racer over budget
	// becomes a "timeout" outcome while the race continues. 0 means
	// racers are bounded only by the race deadline.
	ToolTimeout time.Duration
	// Threshold is the win-condition ratio: a validated result with
	// score <= Threshold*Optimal ends the race and cancels the remaining
	// racers. Requires Optimal; 0 disables.
	Threshold float64
	// Optimal is the instance's proven optimal metric value when known
	// (benchmark instances); 0 means unknown, which disables the
	// threshold and proven-optimum win conditions and ratio reporting.
	Optimal int
	// Metric scores results (zero value scores SWAPs).
	Metric family.Metric
	// HedgeDelay staggers launch tiers; 0 launches everything at once.
	HedgeDelay time.Duration
	// Seed feeds each tool's constructor (offset by the harness schedule,
	// so a portfolio winner matches the evaluation pipeline's result for
	// the same seed).
	Seed int64
	// Budget is the shared worker budget lent to router-internal
	// parallelism; nil sizes one from GOMAXPROCS minus one reserved slot
	// per admitted racer.
	Budget *pool.Budget
	// Breakers, when non-nil, gates admission per tool and is fed every
	// racer outcome. Tools whose breaker is open are skipped.
	Breakers *BreakerSet
}

// Racer outcome classes.
const (
	OutcomeOK        = "ok"        // validated result produced
	OutcomeError     = "error"     // tool returned an error
	OutcomeTimeout   = "timeout"   // racer or race budget expired on it
	OutcomePanic     = "panic"     // tool panicked (contained)
	OutcomeInvalid   = "invalid"   // result failed the independent audit
	OutcomeCancelled = "cancelled" // race ended (win or caller cancel) first
	OutcomeHedged    = "hedged"    // race ended before its hedge tier launched
	OutcomeSkipped   = "skipped"   // circuit breaker open; never admitted
)

// Racer reports one tool's part in a race.
type Racer struct {
	Tool    string `json:"tool"`
	Tier    int    `json:"tier"`
	Outcome string `json:"outcome"`
	// Score is the achieved metric value (validated results only).
	Score     int     `json:"score,omitempty"`
	Swaps     int     `json:"swaps,omitempty"`
	Depth     int     `json:"depth,omitempty"`
	Ratio     float64 `json:"ratio,omitempty"`
	ElapsedMS int64   `json:"elapsed_ms"`
	Err       string  `json:"error,omitempty"`
	// Probe marks a circuit breaker's half-open probe admission.
	Probe  bool `json:"probe,omitempty"`
	Winner bool `json:"winner,omitempty"`
}

// Win/end reasons.
const (
	ReasonThreshold = "threshold" // a result beat Threshold*Optimal
	ReasonOptimal   = "optimal"   // a result matched the proven optimum
	ReasonComplete  = "complete"  // every racer finished; best of all wins
	ReasonDeadline  = "deadline"  // budget expired; best-so-far returned
)

// Result is a race's outcome: the winning validated result plus the full
// per-racer degradation record.
type Result struct {
	// Winner is the best validated result (never nil: an empty race
	// returns an error instead).
	Winner *router.Result `json:"-"`
	Tool   string         `json:"tool"`
	Score  int            `json:"score"`
	// Ratio is Score/Optimal when the optimum is known, else 0.
	Ratio       float64 `json:"ratio,omitempty"`
	Reason      string  `json:"reason"`
	DeadlineHit bool    `json:"deadline_hit,omitempty"`
	ElapsedMS   int64   `json:"elapsed_ms"`
	Racers      []Racer `json:"racers"`
}

// ErrNoResult reports a race in which no tool produced a valid result —
// the only condition the anytime contract surfaces as an error.
var ErrNoResult = errors.New("portfolio: no tool produced a valid result")

// ErrNoAdmissibleTool reports a race that could not start because every
// tool's circuit breaker was open. The serving layer maps it to
// 503 + Retry-After: the client should come back after a cooldown.
var ErrNoAdmissibleTool = errors.New("portfolio: every tool's circuit breaker is open")

// racerDone carries one guarded racer's verdict back to the event loop.
type racerDone struct {
	i       int // index into the launch order
	res     *router.Result
	score   int
	outcome string
	errStr  string
	elapsed time.Duration
}

// toolOutcome crosses the inner tool goroutine boundary (the guard).
type toolOutcome struct {
	res      *router.Result
	err      error
	panicked bool
	panicVal any
	stack    []byte
}

// Run races the entries over the shared routing context and returns the
// best validated result under the configured budget. The returned error
// is non-nil only when no racer produced a valid result (ErrNoResult),
// no racer was admissible (ErrNoAdmissibleTool), or the caller's own
// context was cancelled.
func Run(ctx context.Context, p *router.Prepared, entries []Entry, opts Options) (*Result, error) {
	if len(entries) == 0 {
		return nil, errors.New("portfolio: no tools registered")
	}
	sp, ctx := obs.Begin(ctx, "portfolio", "race")
	defer sp.End()
	sp.ArgInt("tools", int64(len(entries)))
	sp.ArgInt("deadline_ms", opts.Deadline.Milliseconds())

	// Breaker admission: open breakers are skipped up front, before any
	// budget or context is spent on them.
	reports := make([]Racer, len(entries))
	type racer struct {
		entry Entry
		ei    int // index into entries (and reports)
		probe bool
		start time.Time
	}
	var admitted []racer
	for i, e := range entries {
		reports[i] = Racer{Tool: e.Name, Tier: e.Tier, Outcome: OutcomeHedged}
		if opts.Breakers != nil {
			ok, probe := opts.Breakers.Admit(e.Name)
			if !ok {
				reports[i].Outcome = OutcomeSkipped
				continue
			}
			reports[i].Probe = probe
			admitted = append(admitted, racer{entry: e, ei: i, probe: probe})
		} else {
			admitted = append(admitted, racer{entry: e, ei: i})
		}
	}
	if len(admitted) == 0 {
		sp.Arg("outcome", "no_admissible_tool")
		return nil, fmt.Errorf("%w (%d tools tracked)", ErrNoAdmissibleTool, len(entries))
	}
	// Launch order: tier, then registration order within a tier.
	sort.SliceStable(admitted, func(i, j int) bool { return admitted[i].entry.Tier < admitted[j].entry.Tier })
	minTier := admitted[0].entry.Tier

	raceCtx, cancel := ctx, context.CancelFunc(func() {})
	if opts.Deadline > 0 {
		raceCtx, cancel = context.WithTimeout(ctx, opts.Deadline)
	} else {
		raceCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	// One reserved slot per racer; budgeted routers borrow the idle rest,
	// so hedged racers joining later find only genuinely free slots.
	budget := opts.Budget
	if budget == nil {
		budget = pool.NewBudget(runtime.GOMAXPROCS(0) - len(admitted))
	}

	start := time.Now()
	resCh := make(chan racerDone, len(admitted))
	launch := func(i int) {
		r := &admitted[i]
		r.start = time.Now()
		go runRacer(raceCtx, p, r.entry, i, opts, budget, resCh)
	}
	dueAt := func(i int) time.Duration {
		return time.Duration(admitted[i].entry.Tier-minTier) * opts.HedgeDelay
	}

	var best *racerDone
	better := func(d *racerDone) bool {
		if best == nil {
			return true
		}
		if d.score != best.score {
			return d.score < best.score
		}
		// Deterministic tie-break: registration order, not arrival order.
		return admitted[d.i].ei < admitted[best.i].ei
	}
	ratioOf := func(score int) float64 {
		if opts.Optimal > 0 {
			return float64(score) / float64(opts.Optimal)
		}
		return 0
	}
	winReason := func(score int) string {
		if opts.Optimal <= 0 {
			return ""
		}
		if score == opts.Optimal {
			return ReasonOptimal
		}
		if opts.Threshold > 0 && float64(score) <= opts.Threshold*float64(opts.Optimal) {
			return ReasonThreshold
		}
		return ""
	}

	launched, finished := 0, 0
	// apply records one racer's verdict: report row, breaker evidence,
	// and the best-so-far. A "cancelled" verdict after the deadline fired
	// IS the deadline expiring on that racer, so it counts as a timeout.
	apply := func(d racerDone, deadlineHit bool) {
		r := &admitted[d.i]
		rep := &reports[r.ei]
		outcome, errStr := d.outcome, d.errStr
		if outcome == OutcomeCancelled && deadlineHit {
			outcome = OutcomeTimeout
			errStr = fmt.Sprintf("race deadline %v expired", opts.Deadline)
		}
		rep.Outcome = outcome
		rep.Err = errStr
		rep.ElapsedMS = d.elapsed.Milliseconds()
		switch outcome {
		case OutcomeOK:
			rep.Score = d.score
			rep.Swaps = d.res.SwapCount
			rep.Depth = d.res.RoutedDepth()
			rep.Ratio = ratioOf(d.score)
			if opts.Breakers != nil {
				opts.Breakers.Record(r.entry.Name, true, r.probe)
			}
			if better(&d) {
				dd := d
				best = &dd
			}
		case OutcomeCancelled:
			// The race ended out from under this racer — the caller's
			// doing, not evidence about the tool.
			if opts.Breakers != nil {
				opts.Breakers.Forfeit(r.entry.Name, r.probe)
			}
		default: // error, timeout, panic, invalid
			if opts.Breakers != nil {
				opts.Breakers.Record(r.entry.Name, false, r.probe)
			}
		}
	}
	finalize := func(reason string, deadlineHit bool) *Result {
		cancel()
		// Verdicts already delivered but not yet read are truthful — a
		// panic that lost the select race is still a panic, and a result
		// that landed exactly at the deadline still counts as best-so-far.
		for finished < launched {
			select {
			case d := <-resCh:
				finished++
				apply(d, deadlineHit)
				continue
			default:
			}
			break
		}
		// Racers genuinely still in flight say nothing about tool health
		// unless the race's own deadline expired on them.
		for i := 0; i < launched; i++ {
			r := &admitted[i]
			if reports[r.ei].Outcome != OutcomeHedged {
				continue // finished; outcome already recorded
			}
			if deadlineHit {
				reports[r.ei].Outcome = OutcomeTimeout
				reports[r.ei].Err = fmt.Sprintf("race deadline %v expired", opts.Deadline)
				reports[r.ei].ElapsedMS = time.Since(r.start).Milliseconds()
				if opts.Breakers != nil {
					opts.Breakers.Record(r.entry.Name, false, r.probe)
				}
			} else {
				reports[r.ei].Outcome = OutcomeCancelled
				reports[r.ei].ElapsedMS = time.Since(r.start).Milliseconds()
				if opts.Breakers != nil {
					opts.Breakers.Forfeit(r.entry.Name, r.probe)
				}
			}
		}
		for i := launched; i < len(admitted); i++ {
			// Never launched: its hedge tier never came due. No breaker
			// evidence either way.
			if opts.Breakers != nil {
				opts.Breakers.Forfeit(admitted[i].entry.Name, admitted[i].probe)
			}
		}
		out := &Result{
			Reason:      reason,
			DeadlineHit: deadlineHit,
			ElapsedMS:   time.Since(start).Milliseconds(),
			Racers:      reports,
		}
		if best != nil {
			out.Winner = best.res
			out.Tool = admitted[best.i].entry.Name
			out.Score = best.score
			out.Ratio = ratioOf(best.score)
			reports[admitted[best.i].ei].Winner = true
		}
		sp.Arg("reason", reason)
		sp.Arg("winner", out.Tool)
		return out
	}
	noResult := func() error {
		var parts []string
		for _, r := range reports {
			if r.Err != "" {
				parts = append(parts, fmt.Sprintf("%s: %s (%s)", r.Tool, r.Err, r.Outcome))
			} else {
				parts = append(parts, fmt.Sprintf("%s: %s", r.Tool, r.Outcome))
			}
		}
		sp.Arg("outcome", "no_result")
		return fmt.Errorf("%w: %s", ErrNoResult, strings.Join(parts, "; "))
	}

	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()

	for {
		// Launch every racer that is due — or, when all launched racers
		// have finished without a winner, pull the next hedge tier forward:
		// waiting out the delay would only waste the remaining budget.
		for launched < len(admitted) {
			if due := dueAt(launched); time.Since(start) < due && finished < launched {
				break
			}
			launch(launched)
			launched++
		}
		if finished == len(admitted) {
			break // every racer reported; settle on the best
		}
		var timerC <-chan time.Time
		if launched < len(admitted) {
			timer.Reset(dueAt(launched) - time.Since(start))
			timerC = timer.C
		}
		select {
		case d := <-resCh:
			finished++
			apply(d, false)
			if d.outcome == OutcomeOK {
				if reason := winReason(d.score); reason != "" {
					return finalize(reason, false), nil
				}
			}
		case <-timerC:
			// Next hedge tier came due; loop back to the launch step.
		case <-raceCtx.Done():
			if err := ctx.Err(); err != nil {
				// The caller abandoned the race: hard error, exactly like
				// the evaluation pipeline's cancellation semantics.
				finalize(ReasonDeadline, false)
				sp.Arg("outcome", "cancelled")
				return nil, err
			}
			// The race deadline fired: degrade to the best result so far
			// (finalize's drain may still collect one that arrived at the
			// deadline instant).
			res := finalize(ReasonDeadline, true)
			if res.Winner == nil {
				return nil, noResult()
			}
			return res, nil
		}
	}
	res := finalize(ReasonComplete, false)
	if res.Winner == nil {
		return nil, noResult()
	}
	return res, nil
}

// runRacer executes one guarded racer: the tool runs in a further inner
// goroutine so a wedged engine can be abandoned (the guard returns, the
// goroutine leaks until its next ctx poll — the PR-6 isolation price),
// and a panic is contained to this racer. Results are validated and
// optimum-checked here, in parallel with the other racers.
func runRacer(raceCtx context.Context, p *router.Prepared, e Entry, i int, opts Options, budget *pool.Budget, resCh chan<- racerDone) {
	rsp, rctx := obs.Begin(raceCtx, "portfolio", "racer")
	defer rsp.End()
	rsp.Arg("tool", e.Name)
	start := time.Now()
	send := func(d racerDone) {
		d.i = i
		d.elapsed = time.Since(start)
		rsp.Arg("outcome", d.outcome)
		resCh <- d // buffered to len(admitted); never blocks
	}

	toolCtx, cancel := rctx, context.CancelFunc(func() {})
	if opts.ToolTimeout > 0 {
		toolCtx, cancel = context.WithTimeout(rctx, opts.ToolTimeout)
	}
	defer cancel()

	ch := make(chan toolOutcome, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				ch <- toolOutcome{panicked: true, panicVal: v, stack: debug.Stack()}
			}
		}()
		r := e.Make(opts.Seed + 7919)
		if br, ok := r.(router.BudgetedRouter); ok && budget != nil {
			br.SetWorkerBudget(budget)
		}
		var out toolOutcome
		out.res, out.err = router.RoutePreparedWithContext(toolCtx, r, p)
		ch <- out
	}()

	var out toolOutcome
	select {
	case out = <-ch:
	case <-toolCtx.Done():
		if raceCtx.Err() != nil {
			send(racerDone{outcome: OutcomeCancelled})
			return
		}
		send(racerDone{outcome: OutcomeTimeout,
			errStr: fmt.Sprintf("tool timed out after %v", opts.ToolTimeout)})
		return
	}
	if out.panicked {
		// The stack goes to the racer's span (if traced) and the error
		// string; the process stays up — that is the whole point.
		send(racerDone{outcome: OutcomePanic, errStr: fmt.Sprintf("tool panicked: %v", out.panicVal)})
		return
	}
	if out.err != nil {
		if raceCtx.Err() != nil {
			send(racerDone{outcome: OutcomeCancelled})
			return
		}
		if toolCtx.Err() != nil {
			send(racerDone{outcome: OutcomeTimeout,
				errStr: fmt.Sprintf("tool timed out after %v", opts.ToolTimeout)})
			return
		}
		send(racerDone{outcome: OutcomeError, errStr: out.err.Error()})
		return
	}
	if err := router.Validate(p.Circuit, p.Device, out.res); err != nil {
		send(racerDone{outcome: OutcomeInvalid, errStr: "invalid result: " + err.Error()})
		return
	}
	score := opts.Metric.Achieved(out.res)
	if opts.Optimal > 0 && score < opts.Optimal {
		send(racerDone{outcome: OutcomeInvalid,
			errStr: fmt.Sprintf("result beats the proven optimal %s: %d < %d", opts.Metric, score, opts.Optimal)})
		return
	}
	rsp.ArgInt("score", int64(score))
	send(racerDone{res: out.res, score: score, outcome: OutcomeOK})
}
