package portfolio

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock steps through breaker cooldowns without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func (c *fakeClock) cfg(trip int, cd time.Duration) BreakerConfig {
	return BreakerConfig{TripAfter: trip, Cooldown: cd, Now: c.now}
}

func TestBreakerTripHalfOpenClose(t *testing.T) {
	clock := newFakeClock()
	s := NewBreakerSet(clock.cfg(3, time.Minute))

	// Closed admits freely; faults below the trip threshold keep it closed.
	for i := 0; i < 2; i++ {
		if ok, probe := s.Admit("tool"); !ok || probe {
			t.Fatalf("closed breaker: Admit = (%v, %v), want (true, false)", ok, probe)
		}
		s.Record("tool", false, false)
	}
	if got := s.StateOf("tool"); got != Closed {
		t.Fatalf("after 2 faults state = %v, want closed", got)
	}

	// The third consecutive fault trips it open.
	s.Admit("tool")
	s.Record("tool", false, false)
	if got := s.StateOf("tool"); got != Open {
		t.Fatalf("after 3 faults state = %v, want open", got)
	}
	if ok, _ := s.Admit("tool"); ok {
		t.Fatal("open breaker admitted before cooldown")
	}

	// After the cooldown the next Admit is the half-open probe; a second
	// caller is still rejected while the probe is in flight.
	clock.advance(time.Minute)
	ok, probe := s.Admit("tool")
	if !ok || !probe {
		t.Fatalf("post-cooldown Admit = (%v, %v), want (true, true)", ok, probe)
	}
	if got := s.StateOf("tool"); got != HalfOpen {
		t.Fatalf("probing state = %v, want half_open", got)
	}
	if ok, _ := s.Admit("tool"); ok {
		t.Fatal("second caller admitted while the probe is in flight")
	}

	// A successful probe closes the breaker and resets the fault count.
	s.Record("tool", true, true)
	if got := s.StateOf("tool"); got != Closed {
		t.Fatalf("after successful probe state = %v, want closed", got)
	}
	st := s.States()
	if len(st) != 1 || st[0].Consecutive != 0 {
		t.Fatalf("States() = %+v, want one tool with 0 consecutive faults", st)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	clock := newFakeClock()
	s := NewBreakerSet(clock.cfg(1, time.Minute))
	s.Record("tool", false, false)
	if got := s.StateOf("tool"); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
	clock.advance(time.Minute)
	if ok, probe := s.Admit("tool"); !ok || !probe {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	// One failed probe re-opens immediately — no TripAfter grace.
	s.Record("tool", false, true)
	if got := s.StateOf("tool"); got != Open {
		t.Fatalf("after failed probe state = %v, want open", got)
	}
	if ok, _ := s.Admit("tool"); ok {
		t.Fatal("re-opened breaker admitted before a fresh cooldown")
	}
	clock.advance(time.Minute)
	if ok, probe := s.Admit("tool"); !ok || !probe {
		t.Fatal("second cooldown elapsed but no probe admitted")
	}
}

func TestBreakerForfeitReleasesProbe(t *testing.T) {
	clock := newFakeClock()
	s := NewBreakerSet(clock.cfg(1, time.Minute))
	s.Record("tool", false, false)
	clock.advance(time.Minute)
	if ok, probe := s.Admit("tool"); !ok || !probe {
		t.Fatal("no probe admitted after cooldown")
	}
	// The probe race was cancelled before the tool said anything: the
	// admission must be released without counting against the tool, and
	// since the cooldown has already elapsed the very next Admit probes.
	s.Forfeit("tool", true)
	if got := s.StateOf("tool"); got != Open {
		t.Fatalf("after forfeit state = %v, want open", got)
	}
	if ok, probe := s.Admit("tool"); !ok || !probe {
		t.Fatalf("Admit after forfeit = (%v, %v), want a fresh probe", ok, probe)
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{TripAfter: 3})
	s.Record("tool", false, false)
	s.Record("tool", false, false)
	s.Record("tool", true, false) // success wipes the streak
	s.Record("tool", false, false)
	s.Record("tool", false, false)
	if got := s.StateOf("tool"); got != Closed {
		t.Fatalf("non-consecutive faults tripped the breaker (state %v)", got)
	}
	s.Record("tool", false, false)
	if got := s.StateOf("tool"); got != Open {
		t.Fatalf("3 consecutive faults left state %v, want open", got)
	}
}

func TestBreakerTransitionCallback(t *testing.T) {
	clock := newFakeClock()
	var seen []string
	cfg := clock.cfg(1, time.Minute)
	cfg.OnTransition = func(tool string, from, to State) {
		seen = append(seen, fmt.Sprintf("%s:%v->%v", tool, from, to))
	}
	s := NewBreakerSet(cfg)
	s.Record("tool", false, false)
	clock.advance(time.Minute)
	s.Admit("tool")
	s.Record("tool", true, true)
	want := []string{"tool:closed->open", "tool:open->half_open", "tool:half_open->closed"}
	if len(seen) != len(want) {
		t.Fatalf("transitions = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition[%d] = %q, want %q", i, seen[i], want[i])
		}
	}
}
