package portfolio

import (
	"sort"
	"sync"
	"time"
)

// State is one tool's circuit-breaker state.
type State int

const (
	// Closed admits every request — the healthy steady state.
	Closed State = iota
	// HalfOpen admits exactly one probe request; its outcome decides
	// whether the breaker closes (probe succeeded) or re-opens.
	HalfOpen
	// Open admits nothing until the cooldown elapses, at which point the
	// next Admit becomes the half-open probe.
	Open
)

// String renders the state for logs, spans, and metric labels.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half_open"
	case Open:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes a BreakerSet.
type BreakerConfig struct {
	// TripAfter is how many consecutive faulty outcomes (timeout, panic,
	// error, invalid result) open a tool's breaker. Default 3.
	TripAfter int
	// Cooldown is how long an open breaker rejects before admitting a
	// half-open probe. Default 30s.
	Cooldown time.Duration
	// Now overrides the clock; nil uses time.Now. Tests use it to step
	// through the cooldown without sleeping.
	Now func() time.Time
	// OnTransition, when non-nil, observes every state change — the seam
	// the serving layer uses to count transitions per tool. It is called
	// with the set's lock held; keep it cheap and non-reentrant.
	OnTransition func(tool string, from, to State)
}

// BreakerSet tracks one circuit breaker per tool, fed by portfolio race
// outcomes. A tool that keeps timing out or panicking is tripped open
// and skipped by subsequent races (so one wedged engine cannot tax every
// request's deadline); after the cooldown a single probe race re-admits
// it if it has recovered. The zero config trips after 3 consecutive
// faults with a 30s cooldown.
//
// A BreakerSet is safe for concurrent use: the serving layer holds one
// set across all requests.
type BreakerSet struct {
	cfg BreakerConfig

	mu    sync.Mutex
	tools map[string]*breaker
}

type breaker struct {
	state       State
	consecutive int
	openedAt    time.Time
	probing     bool
}

// NewBreakerSet builds a set with the given config (zero values take the
// documented defaults).
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	if cfg.TripAfter <= 0 {
		cfg.TripAfter = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &BreakerSet{cfg: cfg, tools: map[string]*breaker{}}
}

func (s *BreakerSet) get(tool string) *breaker {
	b, ok := s.tools[tool]
	if !ok {
		b = &breaker{}
		s.tools[tool] = b
	}
	return b
}

func (s *BreakerSet) transition(tool string, b *breaker, to State) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if s.cfg.OnTransition != nil {
		s.cfg.OnTransition(tool, from, to)
	}
}

// Admit reports whether the tool may race. probe is true when this
// admission is the single half-open probe after a cooldown — the caller
// must Record its outcome (or Forfeit it) so the breaker can settle.
func (s *BreakerSet) Admit(tool string) (ok, probe bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(tool)
	switch b.state {
	case Closed:
		return true, false
	case Open:
		if s.cfg.Now().Sub(b.openedAt) < s.cfg.Cooldown {
			return false, false
		}
		s.transition(tool, b, HalfOpen)
		b.probing = true
		return true, true
	case HalfOpen:
		if b.probing {
			// One probe at a time; everyone else waits for its verdict.
			return false, false
		}
		b.probing = true
		return true, true
	}
	return false, false
}

// Record feeds one race outcome for an admitted tool. ok means the tool
// produced a validated result; !ok means a faulty outcome (timeout,
// panic, error, invalid). Outcomes that say nothing about the tool's
// health — the race was cancelled, or ended before the tool launched —
// must go through Forfeit instead.
func (s *BreakerSet) Record(tool string, ok, probe bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(tool)
	if probe {
		b.probing = false
	}
	if ok {
		b.consecutive = 0
		s.transition(tool, b, Closed)
		return
	}
	b.consecutive++
	if probe || b.consecutive >= s.cfg.TripAfter {
		b.openedAt = s.cfg.Now()
		s.transition(tool, b, Open)
	}
}

// Forfeit releases an admission whose outcome never materialized (the
// race was cancelled, or ended before the hedged tool launched) without
// moving the breaker either way: a cancelled race is the caller's doing,
// not evidence about the tool.
func (s *BreakerSet) Forfeit(tool string, probe bool) {
	if !probe {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(tool)
	b.probing = false
	if b.state == HalfOpen {
		// The probe evaporated; fall back to open so the next cooldown
		// check re-admits a fresh probe (openedAt is unchanged, so a
		// cooldown that already elapsed re-probes immediately).
		s.transition(tool, b, Open)
	}
}

// StateOf returns the tool's current state (Closed for never-seen tools).
func (s *BreakerSet) StateOf(tool string) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.tools[tool]; ok {
		return b.state
	}
	return Closed
}

// States snapshots every tracked tool's state, sorted by tool name.
func (s *BreakerSet) States() []ToolState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ToolState, 0, len(s.tools))
	for tool, b := range s.tools {
		out = append(out, ToolState{
			Tool:        tool,
			State:       b.state,
			StateName:   b.state.String(),
			Consecutive: b.consecutive,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tool < out[j].Tool })
	return out
}

// ToolState is one tool's breaker snapshot.
type ToolState struct {
	Tool string `json:"tool"`
	// State is the typed state; StateName is its wire form.
	State       State  `json:"-"`
	StateName   string `json:"state"`
	Consecutive int    `json:"consecutive_faults"`
}
