package portfolio

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/qubikos"
	"repro/internal/router"
	"repro/internal/sabre"
)

// prep builds one small known-optimal instance for every race in the
// suite: real routing, real validation, proven optimum.
func prep(t *testing.T) (*router.Prepared, int) {
	t.Helper()
	dev := arch.Grid3x3()
	b, err := qubikos.Generate(dev, qubikos.Options{
		NumSwaps:            2,
		TargetTwoQubitGates: 20,
		MaxTwoQubitGates:    40,
		PreferHighDegree:    true,
		Seed:                7,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := router.Prepare(b.Circuit, dev)
	if err != nil {
		t.Fatal(err)
	}
	return p, b.OptSwaps
}

func healthyEntry(name string, tier, trials int) Entry {
	return Entry{Name: name, Tier: tier, Make: func(seed int64) router.Router {
		return sabre.New(sabre.Options{Trials: trials, Seed: seed})
	}}
}

// chaosEntry wraps a fresh chaos router per race, like real ToolSpecs.
func chaosEntry(name string, tier int, mode chaos.Mode, mut func(*chaos.Router)) Entry {
	return Entry{Name: name, Tier: tier, Make: func(seed int64) router.Router {
		r := &chaos.Router{
			Inner: sabre.New(sabre.Options{Trials: 1, Seed: seed}),
			Mode:  mode,
		}
		if mut != nil {
			mut(r)
		}
		return r
	}}
}

func racerByTool(t *testing.T, res *Result, tool string) Racer {
	t.Helper()
	for _, r := range res.Racers {
		if r.Tool == tool {
			return r
		}
	}
	t.Fatalf("no racer report for %q in %+v", tool, res.Racers)
	return Racer{}
}

// Same seed, same tools, deadline and win conditions disabled: the race
// must settle on the same winner with the same score every time.
func TestRunDeterministicWinner(t *testing.T) {
	p, _ := prep(t)
	entries := []Entry{healthyEntry("a", 0, 1), healthyEntry("b", 0, 2)}
	first, err := Run(context.Background(), p, entries, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if first.Reason != ReasonComplete {
		t.Fatalf("reason = %q, want %q", first.Reason, ReasonComplete)
	}
	for i := 0; i < 3; i++ {
		again, err := Run(context.Background(), p, entries, Options{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if again.Tool != first.Tool || again.Score != first.Score {
			t.Fatalf("run %d winner = %s/%d, first run was %s/%d",
				i, again.Tool, again.Score, first.Tool, first.Score)
		}
	}
}

// Anytime semantics: when the deadline fires with one tool hung, the
// healthy tool's validated result is returned as a degradation, and the
// hung racer is reported (and charged) as a timeout.
func TestRunDeadlineReturnsBestSoFar(t *testing.T) {
	p, _ := prep(t)
	entries := []Entry{
		chaosEntry("hung", 0, chaos.HangUntilCancel, nil),
		healthyEntry("healthy", 0, 1),
	}
	breakers := NewBreakerSet(BreakerConfig{TripAfter: 1})
	res, err := Run(context.Background(), p, entries, Options{
		Deadline: 400 * time.Millisecond,
		Seed:     11,
		Breakers: breakers,
	})
	if err != nil {
		t.Fatalf("deadline with a valid result in hand must degrade, not error: %v", err)
	}
	if !res.DeadlineHit || res.Reason != ReasonDeadline {
		t.Fatalf("DeadlineHit=%v reason=%q, want deadline degradation", res.DeadlineHit, res.Reason)
	}
	if res.Tool != "healthy" || res.Winner == nil {
		t.Fatalf("winner = %q (res %v), want healthy", res.Tool, res.Winner)
	}
	if err := router.Validate(p.Circuit, p.Device, res.Winner); err != nil {
		t.Fatalf("winner failed independent validation: %v", err)
	}
	if r := racerByTool(t, res, "hung"); r.Outcome != OutcomeTimeout {
		t.Fatalf("hung racer outcome = %q, want timeout", r.Outcome)
	}
	// The deadline expiring on a racer is breaker evidence.
	if got := breakers.StateOf("hung"); got != Open {
		t.Fatalf("hung tool breaker = %v, want open after deadline timeout", got)
	}
	if got := breakers.StateOf("healthy"); got != Closed {
		t.Fatalf("healthy tool breaker = %v, want closed", got)
	}
}

// A win condition ends the race early and cancels the remaining racers
// through their contexts — the hung tool never runs out the deadline.
func TestRunWinCancelsLosers(t *testing.T) {
	p, opt := prep(t)
	entries := []Entry{
		healthyEntry("healthy", 0, 1),
		chaosEntry("hung", 0, chaos.HangUntilCancel, nil),
	}
	start := time.Now()
	res, err := Run(context.Background(), p, entries, Options{
		Deadline:  30 * time.Second,
		Threshold: 1000, // any validated result wins
		Optimal:   opt,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != ReasonThreshold && res.Reason != ReasonOptimal {
		t.Fatalf("reason = %q, want a win condition", res.Reason)
	}
	if res.DeadlineHit {
		t.Fatal("win condition reported as a deadline hit")
	}
	if res.Tool != "healthy" {
		t.Fatalf("winner = %q, want healthy", res.Tool)
	}
	if r := racerByTool(t, res, "hung"); r.Outcome != OutcomeCancelled {
		t.Fatalf("hung racer outcome = %q, want cancelled", r.Outcome)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("win took %v; losers were not cancelled", elapsed)
	}
	if !racerByTool(t, res, "healthy").Winner {
		t.Fatal("winning racer not flagged in the report")
	}
}

// Panicking and lying tools become racer outcomes; the audit keeps the
// liar from winning and the panic never crosses the goroutine.
func TestRunIsolatesPanicAndInvalid(t *testing.T) {
	p, opt := prep(t)
	entries := []Entry{
		chaosEntry("panicky", 0, chaos.Panic, nil),
		chaosEntry("liar", 0, chaos.WrongResult, nil),
		healthyEntry("healthy", 0, 1),
	}
	res, err := Run(context.Background(), p, entries, Options{Seed: 11, Optimal: opt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tool != "healthy" {
		t.Fatalf("winner = %q, want healthy", res.Tool)
	}
	if r := racerByTool(t, res, "panicky"); r.Outcome != OutcomePanic {
		t.Fatalf("panicky outcome = %q, want panic", r.Outcome)
	}
	if r := racerByTool(t, res, "liar"); r.Outcome != OutcomeInvalid {
		t.Fatalf("liar outcome = %q (err %q), want invalid", r.Outcome, r.Err)
	}
}

// With every tool failing there is nothing to degrade to: the race is
// the one case that errors, and the error names each tool's outcome.
func TestRunAllFailIsNoResult(t *testing.T) {
	p, _ := prep(t)
	entries := []Entry{
		chaosEntry("failing", 0, chaos.Fail, nil),
		chaosEntry("panicky", 0, chaos.Panic, nil),
	}
	_, err := Run(context.Background(), p, entries, Options{Seed: 11})
	if !errors.Is(err, ErrNoResult) {
		t.Fatalf("err = %v, want ErrNoResult", err)
	}
}

// Per-racer timeouts cut a hung tool without waiting for the race
// deadline, and the race then completes on the healthy result.
func TestRunToolTimeout(t *testing.T) {
	p, _ := prep(t)
	entries := []Entry{
		chaosEntry("hung", 0, chaos.HangUntilCancel, nil),
		healthyEntry("healthy", 0, 1),
	}
	res, err := Run(context.Background(), p, entries, Options{
		ToolTimeout: 150 * time.Millisecond,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reason != ReasonComplete {
		t.Fatalf("reason = %q, want complete (hung tool timed out individually)", res.Reason)
	}
	if r := racerByTool(t, res, "hung"); r.Outcome != OutcomeTimeout {
		t.Fatalf("hung racer outcome = %q, want timeout", r.Outcome)
	}
}

// Hedging: the expensive tier never launches when the cheap tier wins
// first, and is reported as hedged, not charged to its breaker.
func TestRunHedgingHoldsExpensiveTier(t *testing.T) {
	p, opt := prep(t)
	entries := []Entry{
		healthyEntry("cheap", 0, 1),
		chaosEntry("expensive", 1, chaos.HangUntilCancel, nil),
	}
	breakers := NewBreakerSet(BreakerConfig{TripAfter: 1})
	res, err := Run(context.Background(), p, entries, Options{
		Deadline:   30 * time.Second,
		HedgeDelay: time.Hour,
		Threshold:  1000,
		Optimal:    opt,
		Seed:       11,
		Breakers:   breakers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tool != "cheap" {
		t.Fatalf("winner = %q, want cheap", res.Tool)
	}
	if r := racerByTool(t, res, "expensive"); r.Outcome != OutcomeHedged {
		t.Fatalf("expensive racer outcome = %q, want hedged", r.Outcome)
	}
	if got := breakers.StateOf("expensive"); got != Closed {
		t.Fatalf("unlaunched tool's breaker = %v, want closed (no evidence)", got)
	}
}

// Hedging: when every launched racer fails, the next tier is pulled
// forward immediately instead of waiting out the hedge delay.
func TestRunHedgingEarlyLaunchOnFailure(t *testing.T) {
	p, _ := prep(t)
	entries := []Entry{
		chaosEntry("failing", 0, chaos.Fail, nil),
		healthyEntry("backup", 1, 1),
	}
	start := time.Now()
	res, err := Run(context.Background(), p, entries, Options{
		HedgeDelay: time.Hour,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tool != "backup" {
		t.Fatalf("winner = %q, want backup", res.Tool)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("early hedge launch took %v; the delay was not pulled forward", elapsed)
	}
}

// Breakers end-to-end across races: a flaky tool trips open, gets
// skipped, then recovers through a half-open probe.
func TestRunBreakerTripSkipRecover(t *testing.T) {
	p, _ := prep(t)
	clock := newFakeClock()
	breakers := NewBreakerSet(BreakerConfig{TripAfter: 1, Cooldown: time.Minute, Now: clock.now})
	gate := chaos.NewFlakyGate(1) // shared across races: fail once, then recover
	flaky := chaosEntry("flaky", 0, chaos.FailFirstN, func(r *chaos.Router) { r.FirstN = gate })
	opts := Options{Seed: 11, Breakers: breakers}

	// Race 1: the flaky tool errors and trips its breaker.
	if _, err := Run(context.Background(), p, []Entry{flaky}, opts); !errors.Is(err, ErrNoResult) {
		t.Fatalf("race 1 err = %v, want ErrNoResult", err)
	}
	if got := breakers.StateOf("flaky"); got != Open {
		t.Fatalf("after race 1 breaker = %v, want open", got)
	}

	// Race 2: the open breaker leaves no admissible tool — the caller
	// gets the typed error the serving layer maps to 503 + Retry-After.
	if _, err := Run(context.Background(), p, []Entry{flaky}, opts); !errors.Is(err, ErrNoAdmissibleTool) {
		t.Fatalf("race 2 err = %v, want ErrNoAdmissibleTool", err)
	}

	// Race 3 (after cooldown): the half-open probe succeeds — the gate is
	// exhausted — and the breaker closes.
	clock.advance(time.Minute)
	res, err := Run(context.Background(), p, []Entry{flaky}, opts)
	if err != nil {
		t.Fatalf("race 3 (probe) err = %v", err)
	}
	if res.Tool != "flaky" {
		t.Fatalf("probe race winner = %q, want flaky", res.Tool)
	}
	if !racerByTool(t, res, "flaky").Probe {
		t.Fatal("probe race not flagged as a probe in the racer report")
	}
	if got := breakers.StateOf("flaky"); got != Closed {
		t.Fatalf("after successful probe breaker = %v, want closed", got)
	}

	// Race 4: back to normal admission.
	if _, err := Run(context.Background(), p, []Entry{flaky}, opts); err != nil {
		t.Fatalf("race 4 err = %v, want recovered tool to race normally", err)
	}
}

// A caller's own cancellation is a hard error, not a degradation.
func TestRunCallerCancelIsError(t *testing.T) {
	p, _ := prep(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var err error
	go func() {
		defer close(done)
		_, err = Run(ctx, p, []Entry{chaosEntry("hung", 0, chaos.HangUntilCancel, nil)}, Options{Seed: 11})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after caller cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDefaultTier(t *testing.T) {
	if DefaultTier("tket") != 0 || DefaultTier("ml-qls") != 0 {
		t.Error("millisecond-class tools must be tier 0")
	}
	if DefaultTier("qmap") <= DefaultTier("lightsabre") {
		t.Error("qmap must hedge after lightsabre")
	}
	if DefaultTier("mystery") != 1 {
		t.Error("unknown tools default to the middle tier")
	}
}
