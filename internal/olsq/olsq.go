// Package olsq implements exact quantum layout synthesis in the style of
// OLSQ2 (Lin et al., DAC 2023): a SAT encoding that decides whether a
// circuit can be executed on a coupling graph with at most k inserted
// SWAP gates. Iterating or binary-searching over k yields the provably
// minimal SWAP count, which is how the paper's Section IV-A verifies that
// QUBIKOS benchmarks have the optimal counts they claim.
//
// Encoding (coarse "block" formulation). A transpiled circuit with at
// most k SWAPs has the form C'0 T0 C'1 T1 ... C'k where each Ti is one
// optional SWAP. Blocks b = 0..k each carry a full program->physical
// mapping; between consecutive blocks at most one coupling edge is
// swapped. Each two-qubit gate is assigned to a block (order-encoded),
// gate dependencies force non-decreasing blocks, and a gate's two qubits
// must be physically adjacent in its block's mapping.
//
// The bound sweep is incremental in the style of Shaik & van de Pol's
// planning-based layout synthesis: one persistent solver carries a
// single encoding that grows block by block, per-transition activation
// literals and per-bound finalization literals select the bound via
// SolveAssuming, and clauses learned at one bound are reused at every
// later one. See docs/performance.md for the design and measurements.
package olsq

import (
	"context"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/graph"
	"repro/internal/router"
	"repro/internal/sat"
)

// Options tunes the exact solver.
type Options struct {
	// MaxConflicts bounds the SAT search per Decide call; 0 = unlimited.
	MaxConflicts int64
	// UseLowerBound starts MinSwaps' linear search at LowerBound() instead
	// of 0. Off by default: the paper's optimality study certifies with a
	// full UNSAT sweep from zero, so skipping provably-infeasible bounds is
	// an opt-in shortcut.
	UseLowerBound bool
	// NonIncremental restores the legacy search strategy: every Decide call
	// re-encodes the formula at its own bound and solves it on a cold
	// solver. Kept as the baseline for benchmarks and cross-checks; the
	// default incremental path encodes once at the largest bound and
	// re-solves under activation assumptions.
	NonIncremental bool
}

// Solver is the exact layout-synthesis engine for one circuit/device pair.
type Solver struct {
	opts Options
	circ *circuit.Circuit
	dev  *arch.Device
	dag  *circuit.DAG
	// inc is the persistent incremental encoding (largest bound seen so
	// far); learned clauses and VSIDS activity carry across Decide calls.
	inc *encoding
}

// New prepares an exact solver. The circuit may contain single-qubit
// gates; they are ignored (they impose no constraints and are re-inserted
// unchanged in the result). Input circuits must not contain SWAPs.
func New(c *circuit.Circuit, dev *arch.Device, opts Options) (*Solver, error) {
	if c.NumQubits > dev.NumQubits() {
		return nil, fmt.Errorf("olsq: circuit needs %d qubits, device has %d", c.NumQubits, dev.NumQubits())
	}
	for _, g := range c.Gates {
		if g.Kind == circuit.Swap {
			return nil, fmt.Errorf("olsq: input circuit already contains SWAP gates")
		}
	}
	return &Solver{opts: opts, circ: c, dev: dev, dag: circuit.NewDAG(c)}, nil
}

// Result augments the shared router.Result with the block schedule found
// by the SAT model.
type Result struct {
	router.Result
	// BlockOfGate maps each two-qubit-gate DAG node to its block.
	BlockOfGate []int
	// SwapEdges lists, per transition 0..k-1, the physical edge swapped
	// (or nil when the transition is unused).
	SwapEdges []*graph.Edge
}

// SolverStats returns the search-effort counters of the underlying
// incremental SAT solver, accumulated across every Decide/MinSwaps/
// VerifyOptimal call on this Solver. Before the first solve it returns
// the zero value.
func (s *Solver) SolverStats() sat.Stats {
	if s.inc == nil || s.inc.solver == nil {
		return sat.Stats{}
	}
	return s.inc.solver.Stats()
}

// ensureEncoded returns the persistent incremental encoding, growing it
// in place when the requested bound exceeds the encoded one. Every block
// is encoded exactly once across the solver's lifetime; Decide selects a
// bound by assuming activation and finalization literals, so learned
// clauses and variable activity survive the whole bound sweep.
func (s *Solver) ensureEncoded(k int) *encoding {
	if s.inc == nil {
		enc := s.newEncoding()
		enc.solver = sat.NewSolver()
		s.inc = enc
	}
	if s.inc.k < k {
		s.growEncoding(s.inc, s.inc.solver, k)
	}
	return s.inc
}

// Decide reports whether the circuit is executable with at most k SWAPs;
// when satisfiable it returns the witness result. A third "unknown" state
// is reported via err when the conflict budget is exhausted.
func (s *Solver) Decide(k int) (bool, *Result, error) {
	return s.DecideCtx(context.Background(), k)
}

// DecideCtx is Decide under a cancellation context, propagated into the
// SAT search alongside the conflict budget: once ctx is done the solve
// stops at its next conflict poll and ctx.Err() is returned (wrapped),
// distinguishable from budget exhaustion via errors.Is. The solver's
// incremental state stays valid, so a later call with a fresh context
// resumes the bound sweep with everything learned so far.
func (s *Solver) DecideCtx(ctx context.Context, k int) (bool, *Result, error) {
	if k < 0 {
		return false, nil, fmt.Errorf("olsq: negative swap bound %d", k)
	}
	if s.opts.NonIncremental {
		return s.decideFresh(ctx, k)
	}
	enc := s.ensureEncoded(k)
	enc.solver.Budget = s.opts.MaxConflicts
	// Transitions below k are enabled, transitions k..enc.k-1 disabled (a
	// disabled transition swaps no edge, so its mapping carries over
	// unchanged), and fin[k] forces every gate into blocks 0..k — under
	// these assumptions the formula is exactly the ≤k decision.
	asm := make([]sat.Lit, 0, enc.k+1)
	asm = append(asm, enc.fin[k])
	for b := 0; b < enc.k; b++ {
		if b < k {
			asm = append(asm, enc.act[b])
		} else {
			asm = append(asm, enc.act[b].Neg())
		}
	}
	switch enc.solver.SolveAssumingCtx(ctx, asm) {
	case sat.Sat:
		res, err := s.extract(enc, k)
		if err != nil {
			return false, nil, err
		}
		return true, res, nil
	case sat.Unsat:
		return false, nil, nil
	default:
		if err := ctx.Err(); err != nil {
			return false, nil, fmt.Errorf("olsq: solve cancelled at k=%d: %w", k, err)
		}
		return false, nil, fmt.Errorf("olsq: conflict budget exhausted at k=%d", k)
	}
}

// decideFresh is the legacy per-bound path: encode at exactly k, assert
// every activation and the finalization literal, and solve on a cold
// solver.
func (s *Solver) decideFresh(ctx context.Context, k int) (bool, *Result, error) {
	enc := s.encode(k)
	for _, a := range enc.act {
		if err := enc.solver.AddClause(a); err != nil {
			return false, nil, err
		}
	}
	if err := enc.solver.AddClause(enc.fin[k]); err != nil {
		return false, nil, err
	}
	enc.solver.Budget = s.opts.MaxConflicts
	switch enc.solver.SolveCtx(ctx) {
	case sat.Sat:
		res, err := s.extract(enc, k)
		if err != nil {
			return false, nil, err
		}
		return true, res, nil
	case sat.Unsat:
		return false, nil, nil
	default:
		if err := ctx.Err(); err != nil {
			return false, nil, fmt.Errorf("olsq: solve cancelled at k=%d: %w", k, err)
		}
		return false, nil, fmt.Errorf("olsq: conflict budget exhausted at k=%d", k)
	}
}

// MinSwaps finds the minimal SWAP count in [0, maxK] by linear search
// (each infeasible k is a full UNSAT proof, matching how OLSQ2 certifies
// optimality). The default incremental path grows one persistent encoding
// block by block, so each bound reuses everything learned at the bounds
// below it. With Options.UseLowerBound the search starts at LowerBound()
// instead of 0. It returns an error if even maxK is infeasible.
func (s *Solver) MinSwaps(maxK int) (*Result, error) {
	return s.MinSwapsCtx(context.Background(), maxK)
}

// MinSwapsCtx is MinSwaps under a cancellation context, checked before
// each bound and propagated into each Decide's SAT search.
func (s *Solver) MinSwapsCtx(ctx context.Context, maxK int) (*Result, error) {
	start := 0
	if s.opts.UseLowerBound {
		lb := s.LowerBound()
		if lb > maxK {
			return nil, fmt.Errorf("olsq: no solution with at most %d swaps (lower bound %d)", maxK, lb)
		}
		start = lb
	}
	for k := start; k <= maxK; k++ {
		ok, res, err := s.DecideCtx(ctx, k)
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	return nil, fmt.Errorf("olsq: no solution with at most %d swaps", maxK)
}

// LowerBound returns a sound initial-mapping-free lower bound on the
// optimal SWAP count, the mapping-free analogue of the token-swapping
// distance bound (max of Σd/2 and max d): since the minimum over initial
// placements of the summed gate distances is the layout problem itself,
// the bound combines its computable relaxations.
//
//   - Embeddability (the zero test of the distance minimum): if the
//     circuit's interaction graph embeds into the coupling graph, some
//     placement runs every gate at distance 1 and the bound is 0; if VF2
//     proves no embedding exists, at least one SWAP is required. When the
//     VF2 search exhausts its node budget this term falls back to 0.
//   - Adjacency-capacity counting (the Σd/2 analogue): a mapping realizes
//     at most M (coupling edges) adjacent program pairs, and one swap
//     creates at most 2Δ-2 new adjacent pairs (the edges incident to the
//     two moved qubits, minus the swapped edge itself whose occupant pair
//     survives the swap), so k ≥ ⌈(m_I - M) / (2Δ-2)⌉.
//   - Degree excess (the max d analogue): a program qubit sees at most Δ
//     partners per placement, and one transition changes its partner set
//     by at most max(Δ-1, 2) (Δ-1 fresh neighbors when it moves; two
//     refreshed neighbors when both swapped vertices are adjacent to its
//     stationary position), so k ≥ ⌈(deg_I(q) - Δ) / max(Δ-1, 2)⌉.
func (s *Solver) LowerBound() int {
	ig := s.circ.InteractionGraph()
	if ig.M() == 0 {
		return 0
	}
	g := s.dev.Graph()
	lb := 0
	if _, ok, truncated := graph.SubgraphIsomorphism(ig, g, lowerBoundVF2Nodes); !ok && !truncated {
		lb = 1
	}
	maxDeg := 0
	for p := 0; p < g.N(); p++ {
		if d := len(g.Neighbors(p)); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg >= 2 {
		if excess := ig.M() - g.M(); excess > 0 {
			if b := (excess + 2*maxDeg - 3) / (2*maxDeg - 2); b > lb {
				lb = b
			}
		}
		growth := maxDeg - 1
		if growth < 2 {
			growth = 2
		}
		for q := 0; q < ig.N(); q++ {
			if excess := len(ig.Neighbors(q)) - maxDeg; excess > 0 {
				if b := (excess + growth - 1) / growth; b > lb {
					lb = b
				}
			}
		}
	}
	return lb
}

// lowerBoundVF2Nodes caps the VF2 search used by LowerBound.
const lowerBoundVF2Nodes = 2_000_000

// VerifyOptimal certifies that the circuit's optimal SWAP count is exactly
// n: satisfiable at n and (for n > 0) unsatisfiable at n-1. Because the
// encoding permits unused transitions, "≤ n-1 UNSAT" covers every count
// below n. Both checks run on the same persistent solver: the n-1 UNSAT
// proof's learned clauses are reused by the satisfiable check at n.
func (s *Solver) VerifyOptimal(n int) error {
	return s.VerifyOptimalCtx(context.Background(), n)
}

// VerifyOptimalCtx is VerifyOptimal under a cancellation context; both
// decisions run their SAT searches with the context's deadline
// alongside any conflict budget.
func (s *Solver) VerifyOptimalCtx(ctx context.Context, n int) error {
	if n > 0 {
		ok, _, err := s.DecideCtx(ctx, n-1)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("olsq: circuit solvable with %d swaps, claimed optimum %d", n-1, n)
		}
	}
	ok, _, err := s.DecideCtx(ctx, n)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("olsq: circuit not solvable with claimed optimum %d swaps", n)
	}
	return nil
}

// encoding holds the SAT variables of one Decide call.
type encoding struct {
	solver *sat.Solver // nil when encoding into a plain ClauseAdder
	k      int
	// x[b][q][p]: program qubit q is at physical p in block b.
	x [][][]sat.Lit
	// u[g][b]: gate g is scheduled at block <= b (order encoding).
	u [][]sat.Lit
	// t[g][b]: gate g is scheduled exactly at block b.
	t [][]sat.Lit
	// sw[b][e]: transition b swaps coupling edge e (index into edge list).
	sw [][]sat.Lit
	// moved[b][p]: some swapped edge at transition b touches physical p.
	moved [][]sat.Lit
	// act[b]: transition b is enabled. ¬act[b] forces every sw[b][e]
	// false, freezing the mapping across the transition. Decide assumes
	// act[0..k-1] and ¬act[k..] to select a bound without re-encoding;
	// DIMACS export asserts them all as unit clauses.
	act []sat.Lit
	// fin[b]: every gate is scheduled by block b. Decide(k) assumes
	// fin[k] instead of the formula carrying an unconditional final-block
	// unit clause, so the encoding can grow to larger bounds while every
	// clause learned at smaller bounds stays sound.
	fin   []sat.Lit
	edges []graph.Edge
}

func (s *Solver) encode(k int) *encoding {
	sv := sat.NewSolver()
	enc := s.encodeInto(sv, k)
	enc.solver = sv
	return enc
}

// encodeInto builds the ≤k-SWAP decision formula against any clause sink
// (a live solver for Decide, a Recorder for DIMACS export).
func (s *Solver) encodeInto(sv sat.ClauseAdder, k int) *encoding {
	enc := s.newEncoding()
	s.growEncoding(enc, sv, k)
	return enc
}

func (s *Solver) newEncoding() *encoding {
	nG := s.dag.N()
	return &encoding{
		k:     -1,
		u:     make([][]sat.Lit, nG),
		t:     make([][]sat.Lit, nG),
		edges: s.dev.Graph().Edges(),
	}
}

// growEncoding appends blocks enc.k+1 .. k (and the transitions between
// them) to the formula. Growth is strictly additive — no existing clause
// is retracted, and per-bound constraints (which transitions may swap,
// which block all gates must have finished by) live behind the act/fin
// assumption literals — so clauses a persistent solver learned at smaller
// bounds remain sound after the encoding grows.
func (s *Solver) growEncoding(enc *encoding, sv sat.ClauseAdder, k int) {
	nQ := s.circ.NumQubits
	nP := s.dev.NumQubits()
	nG := s.dag.N()
	g := s.dev.Graph()

	newLit := func() sat.Lit { return sat.Lit(sv.NewVar()) }
	check := func(err error) {
		if err != nil {
			panic(err) // unreachable: all literals come from NewVar
		}
	}

	for b := enc.k + 1; b <= k; b++ {
		// Mapping variables and bijectivity for block b.
		xb := make([][]sat.Lit, nQ)
		for q := 0; q < nQ; q++ {
			xb[q] = make([]sat.Lit, nP)
			for p := 0; p < nP; p++ {
				xb[q][p] = newLit()
			}
			check(sat.AddExactlyOne(sv, xb[q]))
		}
		for p := 0; p < nP; p++ {
			col := make([]sat.Lit, nQ)
			for q := 0; q < nQ; q++ {
				col[q] = xb[q][p]
			}
			check(sat.AddAtMostOne(sv, col))
		}
		enc.x = append(enc.x, xb)

		// Gate scheduling: one order-encoding column per block.
		for gi := 0; gi < nG; gi++ {
			enc.u[gi] = append(enc.u[gi], newLit())
			enc.t[gi] = append(enc.t[gi], newLit())
		}
		for gi := 0; gi < nG; gi++ {
			if b == 0 {
				// t[0] <-> u[0].
				check(sat.AddIff(sv, enc.t[gi][0], enc.u[gi][0]))
			} else {
				// Monotone: u[b-1] -> u[b]; t[b] <-> u[b] & !u[b-1].
				check(sat.AddImplies(sv, enc.u[gi][b-1], enc.u[gi][b]))
				check(sat.AddIffAnd(sv, enc.t[gi][b], enc.u[gi][b], enc.u[gi][b-1].Neg()))
			}
			// Dependencies: an immediate predecessor must be scheduled no
			// later: u[g][b] -> u[pred][b]; transitivity extends this to
			// all ancestors.
			for _, pr := range s.dag.Preds[gi] {
				check(sat.AddImplies(sv, enc.u[gi][b], enc.u[pr][b]))
			}
		}

		// Executability: if gate gi runs in block b and its first qubit is
		// at p, its second qubit must be at a neighbor of p.
		for gi := 0; gi < nG; gi++ {
			gt := s.dag.Gate(gi)
			q0, q1 := gt.Q0, gt.Q1
			for p := 0; p < nP; p++ {
				nbrs := g.Neighbors(p)
				cl := make([]sat.Lit, 0, len(nbrs)+2)
				cl = append(cl, enc.t[gi][b].Neg(), xb[q0][p].Neg())
				for _, pn := range nbrs {
					cl = append(cl, xb[q1][pn])
				}
				check(sv.AddClause(cl...))
			}
		}

		// Transition b-1 between blocks b-1 and b: at most one swapped
		// edge; the mapping evolves by that transposition, and unmoved
		// physical qubits keep their occupants.
		if b > 0 {
			tr := b - 1
			xa := enc.x[tr]
			swb := make([]sat.Lit, len(enc.edges))
			for e := range enc.edges {
				swb[e] = newLit()
			}
			enc.sw = append(enc.sw, swb)
			check(sat.AddAtMostOne(sv, swb))

			// Activation: a disabled transition swaps nothing.
			actb := newLit()
			enc.act = append(enc.act, actb)
			for e := range enc.edges {
				check(sat.AddImplies(sv, swb[e], actb))
			}

			movedb := make([]sat.Lit, nP)
			for p := 0; p < nP; p++ {
				var touching []sat.Lit
				for e, ed := range enc.edges {
					if ed.U == p || ed.V == p {
						touching = append(touching, swb[e])
					}
				}
				movedb[p] = newLit()
				check(sat.AddIffOr(sv, movedb[p], touching))
			}
			enc.moved = append(enc.moved, movedb)

			for e, ed := range enc.edges {
				for q := 0; q < nQ; q++ {
					// sw -> (x[b][q][U] <-> x[b-1][q][V]) and symmetrically.
					check(sv.AddClause(swb[e].Neg(), xa[q][ed.V].Neg(), xb[q][ed.U]))
					check(sv.AddClause(swb[e].Neg(), xa[q][ed.V], xb[q][ed.U].Neg()))
					check(sv.AddClause(swb[e].Neg(), xa[q][ed.U].Neg(), xb[q][ed.V]))
					check(sv.AddClause(swb[e].Neg(), xa[q][ed.U], xb[q][ed.V].Neg()))
				}
			}
			for p := 0; p < nP; p++ {
				for q := 0; q < nQ; q++ {
					check(sv.AddClause(movedb[p], xa[q][p].Neg(), xb[q][p]))
					check(sv.AddClause(movedb[p], xa[q][p], xb[q][p].Neg()))
				}
			}
		}

		// Finalization: fin[b] forces every gate to finish by block b.
		finb := newLit()
		enc.fin = append(enc.fin, finb)
		for gi := 0; gi < nG; gi++ {
			check(sat.AddImplies(sv, finb, enc.u[gi][b]))
		}
	}
	enc.k = k
}

// ExportDIMACS writes the ≤k-SWAP decision formula in DIMACS CNF format,
// for archiving or cross-checking with external SAT solvers. The emitted
// formula is exactly what the incremental encoder builds at bound k, with
// every activation assumption asserted as a unit clause, so an external
// solver reproduces Decide(k)'s verdict.
func (s *Solver) ExportDIMACS(w io.Writer, k int) error {
	if k < 0 {
		return fmt.Errorf("olsq: negative swap bound %d", k)
	}
	rec := sat.NewRecorder()
	enc := s.encodeInto(rec, k)
	for _, a := range enc.act {
		if err := rec.AddClause(a); err != nil {
			return err
		}
	}
	if err := rec.AddClause(enc.fin[k]); err != nil {
		return err
	}
	return sat.WriteDIMACS(w, &rec.Formula)
}

// extract reads the SAT model into a Result with a transpiled circuit.
// The encoding may be built at a larger bound than the decided k (the
// incremental path), but the assumed fin[k] forces u[g][k] true for every
// gate, so no gate is scheduled past block k and transitions at and
// beyond k are disabled — only blocks 0..k need reading.
func (s *Solver) extract(enc *encoding, k int) (*Result, error) {
	sv := enc.solver
	nQ := s.circ.NumQubits
	nP := s.dev.NumQubits()

	mappingAt := func(b int) (router.Mapping, error) {
		m := make(router.Mapping, nQ)
		for q := 0; q < nQ; q++ {
			m[q] = -1
			for p := 0; p < nP; p++ {
				if sv.Value(enc.x[b][q][p].Var()) {
					if m[q] != -1 {
						return nil, fmt.Errorf("olsq: model places q%d twice in block %d", q, b)
					}
					m[q] = p
				}
			}
			if m[q] == -1 {
				return nil, fmt.Errorf("olsq: model leaves q%d unplaced in block %d", q, b)
			}
		}
		return m, nil
	}

	init, err := mappingAt(0)
	if err != nil {
		return nil, err
	}

	// Block of each DAG node.
	block := make([]int, s.dag.N())
	for gi := range block {
		block[gi] = -1
		for b := 0; b <= k; b++ {
			if sv.Value(enc.t[gi][b].Var()) {
				block[gi] = b
				break
			}
		}
		if block[gi] == -1 {
			return nil, fmt.Errorf("olsq: model leaves gate %d unscheduled", gi)
		}
	}

	// Swap edge per transition.
	swapEdges := make([]*graph.Edge, k)
	for b := 0; b < k; b++ {
		for e := range enc.edges {
			if sv.Value(enc.sw[b][e].Var()) {
				ed := enc.edges[e]
				swapEdges[b] = &ed
				break
			}
		}
	}

	// Assemble the two-qubit skeleton block by block with SWAPs between
	// blocks; within a block, gates keep original circuit order, so the
	// skeleton is a dependency-valid reordering. Single-qubit gates are
	// woven back afterwards.
	skeleton := circuit.New(nQ)
	cur := init.Clone()
	swaps := 0
	for b := 0; b <= k; b++ {
		for idx := range s.circ.Gates {
			node := s.dag.NodeOf[idx]
			if node == -1 || block[node] != b {
				continue
			}
			skeleton.MustAppend(s.circ.Gates[idx])
		}
		if b < k && swapEdges[b] != nil {
			inv := cur.Inverse(nP)
			qa, qb := inv[swapEdges[b].U], inv[swapEdges[b].V]
			if qa == -1 || qb == -1 {
				return nil, fmt.Errorf("olsq: swap on unoccupied physical qubits at transition %d", b)
			}
			skeleton.MustAppend(circuit.NewSwap(qa, qb))
			cur.SwapProgram(qa, qb)
			swaps++
		}
	}
	trans, err := router.WeaveSingleQubitGates(s.circ, skeleton)
	if err != nil {
		return nil, fmt.Errorf("olsq: %w", err)
	}

	res := &Result{
		Result: router.Result{
			Tool:           "olsq-exact",
			InitialMapping: init,
			Transpiled:     trans,
			SwapCount:      swaps,
			Trials:         1,
		},
		BlockOfGate: block,
		SwapEdges:   swapEdges,
	}
	if err := router.Validate(s.circ, s.dev, &res.Result); err != nil {
		return nil, fmt.Errorf("olsq: internal error, extracted result invalid: %w", err)
	}
	return res, nil
}
