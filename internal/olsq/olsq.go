// Package olsq implements exact quantum layout synthesis in the style of
// OLSQ2 (Lin et al., DAC 2023): a SAT encoding that decides whether a
// circuit can be executed on a coupling graph with at most k inserted
// SWAP gates. Iterating or binary-searching over k yields the provably
// minimal SWAP count, which is how the paper's Section IV-A verifies that
// QUBIKOS benchmarks have the optimal counts they claim.
//
// Encoding (coarse "block" formulation). A transpiled circuit with at
// most k SWAPs has the form C'0 T0 C'1 T1 ... C'k where each Ti is one
// optional SWAP. Blocks b = 0..k each carry a full program->physical
// mapping; between consecutive blocks at most one coupling edge is
// swapped. Each two-qubit gate is assigned to a block (order-encoded),
// gate dependencies force non-decreasing blocks, and a gate's two qubits
// must be physically adjacent in its block's mapping.
package olsq

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/graph"
	"repro/internal/router"
	"repro/internal/sat"
)

// Options tunes the exact solver.
type Options struct {
	// MaxConflicts bounds the SAT search per Decide call; 0 = unlimited.
	MaxConflicts int64
}

// Solver is the exact layout-synthesis engine for one circuit/device pair.
type Solver struct {
	opts Options
	circ *circuit.Circuit
	dev  *arch.Device
	dag  *circuit.DAG
}

// New prepares an exact solver. The circuit may contain single-qubit
// gates; they are ignored (they impose no constraints and are re-inserted
// unchanged in the result). Input circuits must not contain SWAPs.
func New(c *circuit.Circuit, dev *arch.Device, opts Options) (*Solver, error) {
	if c.NumQubits > dev.NumQubits() {
		return nil, fmt.Errorf("olsq: circuit needs %d qubits, device has %d", c.NumQubits, dev.NumQubits())
	}
	for _, g := range c.Gates {
		if g.Kind == circuit.Swap {
			return nil, fmt.Errorf("olsq: input circuit already contains SWAP gates")
		}
	}
	return &Solver{opts: opts, circ: c, dev: dev, dag: circuit.NewDAG(c)}, nil
}

// Result augments the shared router.Result with the block schedule found
// by the SAT model.
type Result struct {
	router.Result
	// BlockOfGate maps each two-qubit-gate DAG node to its block.
	BlockOfGate []int
	// SwapEdges lists, per transition 0..k-1, the physical edge swapped
	// (or nil when the transition is unused).
	SwapEdges []*graph.Edge
}

// Decide reports whether the circuit is executable with at most k SWAPs;
// when satisfiable it returns the witness result. A third "unknown" state
// is reported via err when the conflict budget is exhausted.
func (s *Solver) Decide(k int) (bool, *Result, error) {
	if k < 0 {
		return false, nil, fmt.Errorf("olsq: negative swap bound %d", k)
	}
	enc := s.encode(k)
	enc.solver.Budget = s.opts.MaxConflicts
	switch enc.solver.Solve() {
	case sat.Sat:
		res, err := s.extract(enc, k)
		if err != nil {
			return false, nil, err
		}
		return true, res, nil
	case sat.Unsat:
		return false, nil, nil
	default:
		return false, nil, fmt.Errorf("olsq: conflict budget exhausted at k=%d", k)
	}
}

// MinSwaps finds the minimal SWAP count in [0, maxK] by linear search from
// 0 (each infeasible k is a full UNSAT proof, matching how OLSQ2 certifies
// optimality). It returns an error if even maxK is infeasible.
func (s *Solver) MinSwaps(maxK int) (*Result, error) {
	for k := 0; k <= maxK; k++ {
		ok, res, err := s.Decide(k)
		if err != nil {
			return nil, err
		}
		if ok {
			return res, nil
		}
	}
	return nil, fmt.Errorf("olsq: no solution with at most %d swaps", maxK)
}

// VerifyOptimal certifies that the circuit's optimal SWAP count is exactly
// n: satisfiable at n and (for n > 0) unsatisfiable at n-1. Because the
// encoding permits unused transitions, "≤ n-1 UNSAT" covers every count
// below n.
func (s *Solver) VerifyOptimal(n int) error {
	if n > 0 {
		ok, _, err := s.Decide(n - 1)
		if err != nil {
			return err
		}
		if ok {
			return fmt.Errorf("olsq: circuit solvable with %d swaps, claimed optimum %d", n-1, n)
		}
	}
	ok, _, err := s.Decide(n)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("olsq: circuit not solvable with claimed optimum %d swaps", n)
	}
	return nil
}

// encoding holds the SAT variables of one Decide call.
type encoding struct {
	solver *sat.Solver // nil when encoding into a plain ClauseAdder
	k      int
	// x[b][q][p]: program qubit q is at physical p in block b.
	x [][][]sat.Lit
	// u[g][b]: gate g is scheduled at block <= b (order encoding).
	u [][]sat.Lit
	// t[g][b]: gate g is scheduled exactly at block b.
	t [][]sat.Lit
	// sw[b][e]: transition b swaps coupling edge e (index into edge list).
	sw [][]sat.Lit
	// moved[b][p]: some swapped edge at transition b touches physical p.
	moved [][]sat.Lit
	edges []graph.Edge
}

func (s *Solver) encode(k int) *encoding {
	sv := sat.NewSolver()
	enc := s.encodeInto(sv, k)
	enc.solver = sv
	return enc
}

// encodeInto builds the ≤k-SWAP decision formula against any clause sink
// (a live solver for Decide, a Recorder for DIMACS export).
func (s *Solver) encodeInto(sv sat.ClauseAdder, k int) *encoding {
	nQ := s.circ.NumQubits
	nP := s.dev.NumQubits()
	nG := s.dag.N()
	g := s.dev.Graph()
	enc := &encoding{k: k, edges: g.Edges()}

	newLit := func() sat.Lit { return sat.Lit(sv.NewVar()) }
	check := func(err error) {
		if err != nil {
			panic(err) // unreachable: all literals come from NewVar
		}
	}

	// Mapping variables and bijectivity per block.
	enc.x = make([][][]sat.Lit, k+1)
	for b := 0; b <= k; b++ {
		enc.x[b] = make([][]sat.Lit, nQ)
		for q := 0; q < nQ; q++ {
			enc.x[b][q] = make([]sat.Lit, nP)
			for p := 0; p < nP; p++ {
				enc.x[b][q][p] = newLit()
			}
			check(sat.AddExactlyOne(sv, enc.x[b][q]))
		}
		for p := 0; p < nP; p++ {
			col := make([]sat.Lit, nQ)
			for q := 0; q < nQ; q++ {
				col[q] = enc.x[b][q][p]
			}
			check(sat.AddAtMostOne(sv, col))
		}
	}

	// Gate scheduling: order encoding over blocks.
	enc.u = make([][]sat.Lit, nG)
	enc.t = make([][]sat.Lit, nG)
	for gi := 0; gi < nG; gi++ {
		enc.u[gi] = make([]sat.Lit, k+1)
		enc.t[gi] = make([]sat.Lit, k+1)
		for b := 0; b <= k; b++ {
			enc.u[gi][b] = newLit()
			enc.t[gi][b] = newLit()
		}
		// Monotone: u[b] -> u[b+1]; final block certain.
		for b := 0; b < k; b++ {
			check(sat.AddImplies(sv, enc.u[gi][b], enc.u[gi][b+1]))
		}
		check(sv.AddClause(enc.u[gi][k]))
		// t[0] <-> u[0]; t[b] <-> u[b] & !u[b-1].
		check(sat.AddIff(sv, enc.t[gi][0], enc.u[gi][0]))
		for b := 1; b <= k; b++ {
			check(sat.AddIffAnd(sv, enc.t[gi][b], enc.u[gi][b], enc.u[gi][b-1].Neg()))
		}
	}
	// Dependencies: an immediate predecessor must be scheduled no later.
	// u[g][b] -> u[pred][b]; transitivity extends this to all ancestors.
	for gi := 0; gi < nG; gi++ {
		for _, pr := range s.dag.Preds[gi] {
			for b := 0; b <= k; b++ {
				check(sat.AddImplies(sv, enc.u[gi][b], enc.u[pr][b]))
			}
		}
	}

	// Executability: if gate gi runs in block b and its first qubit is at
	// p, its second qubit must be at a neighbor of p.
	for gi := 0; gi < nG; gi++ {
		gt := s.dag.Gate(gi)
		q0, q1 := gt.Q0, gt.Q1
		for b := 0; b <= k; b++ {
			for p := 0; p < nP; p++ {
				nbrs := g.Neighbors(p)
				cl := make([]sat.Lit, 0, len(nbrs)+2)
				cl = append(cl, enc.t[gi][b].Neg(), enc.x[b][q0][p].Neg())
				for _, pn := range nbrs {
					cl = append(cl, enc.x[b][q1][pn])
				}
				check(sv.AddClause(cl...))
			}
		}
	}

	// Transitions: at most one swapped edge each; mapping evolves by that
	// transposition, and unmoved physical qubits keep their occupants.
	enc.sw = make([][]sat.Lit, k)
	enc.moved = make([][]sat.Lit, k)
	for b := 0; b < k; b++ {
		enc.sw[b] = make([]sat.Lit, len(enc.edges))
		for e := range enc.edges {
			enc.sw[b][e] = newLit()
		}
		check(sat.AddAtMostOne(sv, enc.sw[b]))

		enc.moved[b] = make([]sat.Lit, nP)
		for p := 0; p < nP; p++ {
			var touching []sat.Lit
			for e, ed := range enc.edges {
				if ed.U == p || ed.V == p {
					touching = append(touching, enc.sw[b][e])
				}
			}
			enc.moved[b][p] = newLit()
			check(sat.AddIffOr(sv, enc.moved[b][p], touching))
		}

		for e, ed := range enc.edges {
			for q := 0; q < nQ; q++ {
				// sw -> (x[b+1][q][U] <-> x[b][q][V]) and symmetrically.
				check(sv.AddClause(enc.sw[b][e].Neg(), enc.x[b][q][ed.V].Neg(), enc.x[b+1][q][ed.U]))
				check(sv.AddClause(enc.sw[b][e].Neg(), enc.x[b][q][ed.V], enc.x[b+1][q][ed.U].Neg()))
				check(sv.AddClause(enc.sw[b][e].Neg(), enc.x[b][q][ed.U].Neg(), enc.x[b+1][q][ed.V]))
				check(sv.AddClause(enc.sw[b][e].Neg(), enc.x[b][q][ed.U], enc.x[b+1][q][ed.V].Neg()))
			}
		}
		for p := 0; p < nP; p++ {
			for q := 0; q < nQ; q++ {
				check(sv.AddClause(enc.moved[b][p], enc.x[b][q][p].Neg(), enc.x[b+1][q][p]))
				check(sv.AddClause(enc.moved[b][p], enc.x[b][q][p], enc.x[b+1][q][p].Neg()))
			}
		}
	}
	return enc
}

// ExportDIMACS writes the ≤k-SWAP decision formula in DIMACS CNF format,
// for archiving or cross-checking with external SAT solvers.
func (s *Solver) ExportDIMACS(w io.Writer, k int) error {
	if k < 0 {
		return fmt.Errorf("olsq: negative swap bound %d", k)
	}
	rec := sat.NewRecorder()
	s.encodeInto(rec, k)
	return sat.WriteDIMACS(w, &rec.Formula)
}

// extract reads the SAT model into a Result with a transpiled circuit.
func (s *Solver) extract(enc *encoding, k int) (*Result, error) {
	sv := enc.solver
	nQ := s.circ.NumQubits
	nP := s.dev.NumQubits()

	mappingAt := func(b int) (router.Mapping, error) {
		m := make(router.Mapping, nQ)
		for q := 0; q < nQ; q++ {
			m[q] = -1
			for p := 0; p < nP; p++ {
				if sv.Value(enc.x[b][q][p].Var()) {
					if m[q] != -1 {
						return nil, fmt.Errorf("olsq: model places q%d twice in block %d", q, b)
					}
					m[q] = p
				}
			}
			if m[q] == -1 {
				return nil, fmt.Errorf("olsq: model leaves q%d unplaced in block %d", q, b)
			}
		}
		return m, nil
	}

	init, err := mappingAt(0)
	if err != nil {
		return nil, err
	}

	// Block of each DAG node.
	block := make([]int, s.dag.N())
	for gi := range block {
		block[gi] = -1
		for b := 0; b <= k; b++ {
			if sv.Value(enc.t[gi][b].Var()) {
				block[gi] = b
				break
			}
		}
		if block[gi] == -1 {
			return nil, fmt.Errorf("olsq: model leaves gate %d unscheduled", gi)
		}
	}

	// Swap edge per transition.
	swapEdges := make([]*graph.Edge, k)
	for b := 0; b < k; b++ {
		for e := range enc.edges {
			if sv.Value(enc.sw[b][e].Var()) {
				ed := enc.edges[e]
				swapEdges[b] = &ed
				break
			}
		}
	}

	// Assemble the two-qubit skeleton block by block with SWAPs between
	// blocks; within a block, gates keep original circuit order, so the
	// skeleton is a dependency-valid reordering. Single-qubit gates are
	// woven back afterwards.
	skeleton := circuit.New(nQ)
	cur := init.Clone()
	swaps := 0
	for b := 0; b <= k; b++ {
		for idx := range s.circ.Gates {
			node := s.dag.NodeOf[idx]
			if node == -1 || block[node] != b {
				continue
			}
			skeleton.MustAppend(s.circ.Gates[idx])
		}
		if b < k && swapEdges[b] != nil {
			inv := cur.Inverse(nP)
			qa, qb := inv[swapEdges[b].U], inv[swapEdges[b].V]
			if qa == -1 || qb == -1 {
				return nil, fmt.Errorf("olsq: swap on unoccupied physical qubits at transition %d", b)
			}
			skeleton.MustAppend(circuit.NewSwap(qa, qb))
			cur.SwapProgram(qa, qb)
			swaps++
		}
	}
	trans, err := router.WeaveSingleQubitGates(s.circ, skeleton)
	if err != nil {
		return nil, fmt.Errorf("olsq: %w", err)
	}

	res := &Result{
		Result: router.Result{
			Tool:           "olsq-exact",
			InitialMapping: init,
			Transpiled:     trans,
			SwapCount:      swaps,
			Trials:         1,
		},
		BlockOfGate: block,
		SwapEdges:   swapEdges,
	}
	if err := router.Validate(s.circ, s.dev, &res.Result); err != nil {
		return nil, fmt.Errorf("olsq: internal error, extracted result invalid: %w", err)
	}
	return res, nil
}
