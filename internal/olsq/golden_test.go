package olsq_test

// Golden corpus for the exact-verification engine. The expected values
// below were recorded from the pre-refactor engine (per-k re-encode, cold
// solver per bound, pointer-based CDCL core) on a fixed QUBIKOS corpus;
// the flat-arena incremental engine must reproduce every SAT/UNSAT
// verdict, MinSwaps value, and extracted swap count bit-for-bit, on both
// the incremental and the legacy per-k path.

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/olsq"
	"repro/internal/qubikos"
	"repro/internal/router"
)

type goldenCase struct {
	device    string
	numSwaps  int
	instance  int
	decideLow bool // Decide(n-1) verdict
	decideAt  bool // Decide(n) verdict
	atCount   int  // swap count extracted from the Decide(n) witness
	minSwaps  int  // MinSwaps(n+2) result
}

// Recorded 2026-07-28 from the seed engine (commit f7754fb); instance
// seeds follow the optimality study's convention 7 + n*100_000 + i.
var goldenCorpus = []goldenCase{
	{"grid3x3", 1, 0, false, true, 1, 1},
	{"grid3x3", 1, 1, false, true, 1, 1},
	{"grid3x3", 2, 0, false, true, 2, 2},
	{"grid3x3", 2, 1, false, true, 2, 2},
	{"grid3x3", 3, 0, false, true, 3, 3},
	{"grid3x3", 3, 1, false, true, 3, 3},
	{"aspen4", 1, 0, false, true, 1, 1},
	{"aspen4", 1, 1, false, true, 1, 1},
	{"aspen4", 2, 0, false, true, 2, 2},
	{"aspen4", 2, 1, false, true, 2, 2},
	{"aspen4", 3, 0, false, true, 3, 3},
	{"aspen4", 3, 1, false, true, 3, 3},
}

func goldenDevice(t *testing.T, name string) *arch.Device {
	t.Helper()
	dev, err := arch.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

func runGoldenCase(t *testing.T, gc goldenCase, opts olsq.Options) {
	t.Helper()
	dev := goldenDevice(t, gc.device)
	b, err := qubikos.Generate(dev, qubikos.Options{
		NumSwaps:            gc.numSwaps,
		MaxTwoQubitGates:    30,
		TargetTwoQubitGates: 30,
		PreferHighDegree:    true,
		Seed:                7 + int64(gc.numSwaps)*100_000 + int64(gc.instance),
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := olsq.New(b.Circuit, dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	okLow, _, err := s.Decide(gc.numSwaps - 1)
	if err != nil {
		t.Fatal(err)
	}
	if okLow != gc.decideLow {
		t.Errorf("Decide(%d)=%v want %v", gc.numSwaps-1, okLow, gc.decideLow)
	}
	okAt, resAt, err := s.Decide(gc.numSwaps)
	if err != nil {
		t.Fatal(err)
	}
	if okAt != gc.decideAt {
		t.Fatalf("Decide(%d)=%v want %v", gc.numSwaps, okAt, gc.decideAt)
	}
	if resAt.SwapCount != gc.atCount {
		t.Errorf("extracted swap count %d want %d", resAt.SwapCount, gc.atCount)
	}
	if err := router.Validate(b.Circuit, dev, &resAt.Result); err != nil {
		t.Errorf("extracted witness invalid: %v", err)
	}
	res, err := s.MinSwaps(gc.numSwaps + 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != gc.minSwaps {
		t.Errorf("MinSwaps=%d want %d", res.SwapCount, gc.minSwaps)
	}
	if err := s.VerifyOptimal(gc.numSwaps); err != nil {
		t.Errorf("VerifyOptimal(%d): %v", gc.numSwaps, err)
	}
}

func TestGoldenCorpusIncremental(t *testing.T) {
	if testing.Short() {
		t.Skip("exact golden corpus in -short mode")
	}
	for _, gc := range goldenCorpus {
		gc := gc
		name := fmt.Sprintf("%s/n%d/i%d", gc.device, gc.numSwaps, gc.instance)
		t.Run(name, func(t *testing.T) { runGoldenCase(t, gc, olsq.Options{}) })
	}
}

func TestGoldenCorpusPerKReencode(t *testing.T) {
	if testing.Short() {
		t.Skip("exact golden corpus in -short mode")
	}
	for _, gc := range goldenCorpus {
		gc := gc
		name := fmt.Sprintf("%s/n%d/i%d", gc.device, gc.numSwaps, gc.instance)
		t.Run(name, func(t *testing.T) { runGoldenCase(t, gc, olsq.Options{NonIncremental: true}) })
	}
}
