package olsq

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/router"
	"repro/internal/sat"
)

func mustSolver(t *testing.T, c *circuit.Circuit, dev *arch.Device) *Solver {
	t.Helper()
	s, err := New(c, dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The paper's Figure 1 example: triangle interaction on a 4-qubit line
// needs exactly one SWAP.
func TestFigure1TriangleNeedsOneSwap(t *testing.T) {
	c := circuit.New(3)
	c.MustAppend(circuit.NewCX(0, 1), circuit.NewCX(1, 2), circuit.NewCX(0, 2))
	s := mustSolver(t, c, arch.Line(4))

	ok, _, err := s.Decide(0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("triangle should not embed in a line with 0 swaps")
	}
	ok, res, err := s.Decide(1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("triangle should be solvable with 1 swap")
	}
	if res.SwapCount != 1 {
		t.Errorf("SwapCount=%d want 1", res.SwapCount)
	}
	if err := router.Validate(c, arch.Line(4), &res.Result); err != nil {
		t.Fatalf("extracted result invalid: %v", err)
	}
}

func TestMinSwapsZeroForEmbeddable(t *testing.T) {
	// A path circuit on a line device embeds directly.
	c := circuit.New(4)
	c.MustAppend(circuit.NewCX(0, 1), circuit.NewCX(1, 2), circuit.NewCX(2, 3))
	s := mustSolver(t, c, arch.Line(4))
	res, err := s.MinSwaps(2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount != 0 {
		t.Errorf("SwapCount=%d want 0", res.SwapCount)
	}
}

func TestMinSwapsRespectsDependencies(t *testing.T) {
	// Two sequential "triangles" on disjoint phases sharing qubits force
	// sequential execution; each needs a swap on a line.
	c := circuit.New(3)
	c.MustAppend(
		circuit.NewCX(0, 1), circuit.NewCX(1, 2), circuit.NewCX(0, 2),
		circuit.NewCX(0, 1), circuit.NewCX(1, 2), circuit.NewCX(0, 2),
	)
	s := mustSolver(t, c, arch.Line(4))
	res, err := s.MinSwaps(4)
	if err != nil {
		t.Fatal(err)
	}
	// The second triangle can often reuse the swapped layout, so 1 or 2.
	if res.SwapCount < 1 || res.SwapCount > 2 {
		t.Errorf("SwapCount=%d want 1..2", res.SwapCount)
	}
	if err := router.Validate(c, arch.Line(4), &res.Result); err != nil {
		t.Fatal(err)
	}
}

func TestSingleQubitGatesPreserved(t *testing.T) {
	c := circuit.New(3)
	c.MustAppend(
		circuit.NewH(0),
		circuit.NewCX(0, 1),
		circuit.NewRZ(1, 0.5),
		circuit.NewCX(1, 2),
		circuit.NewX(2),
		circuit.NewCX(0, 2),
		circuit.NewH(1),
	)
	dev := arch.Line(4)
	s := mustSolver(t, c, dev)
	res, err := s.MinSwaps(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Validate(c, dev, &res.Result); err != nil {
		t.Fatalf("result with 1q gates invalid: %v", err)
	}
	if res.Transpiled.NumGates()-res.SwapCount != c.NumGates() {
		t.Errorf("gate count mismatch: %d vs %d", res.Transpiled.NumGates()-res.SwapCount, c.NumGates())
	}
}

func TestDecideRejectsNegativeK(t *testing.T) {
	c := circuit.New(2)
	c.MustAppend(circuit.NewCX(0, 1))
	s := mustSolver(t, c, arch.Line(2))
	if _, _, err := s.Decide(-1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestNewRejectsSwapsInInput(t *testing.T) {
	c := circuit.New(2)
	c.MustAppend(circuit.NewSwap(0, 1))
	if _, err := New(c, arch.Line(2), Options{}); err == nil {
		t.Fatal("input with SWAP accepted")
	}
}

func TestNewRejectsTooManyQubits(t *testing.T) {
	c := circuit.New(5)
	if _, err := New(c, arch.Line(3), Options{}); err == nil {
		t.Fatal("oversized circuit accepted")
	}
}

func TestVerifyOptimal(t *testing.T) {
	c := circuit.New(3)
	c.MustAppend(circuit.NewCX(0, 1), circuit.NewCX(1, 2), circuit.NewCX(0, 2))
	s := mustSolver(t, c, arch.Line(4))
	if err := s.VerifyOptimal(1); err != nil {
		t.Fatalf("VerifyOptimal(1): %v", err)
	}
	if err := s.VerifyOptimal(0); err == nil {
		t.Fatal("VerifyOptimal(0) should fail (needs 1 swap)")
	}
	if err := s.VerifyOptimal(2); err == nil {
		t.Fatal("VerifyOptimal(2) should fail (1 swap suffices)")
	}
}

func TestStarCircuitOnGrid(t *testing.T) {
	// A degree-5 hub cannot exist on grid3x3 (max degree 4): K1,5 needs
	// at least one swap.
	c := circuit.New(6)
	for i := 1; i <= 5; i++ {
		c.MustAppend(circuit.NewCX(0, i))
	}
	dev := arch.Grid3x3()
	s := mustSolver(t, c, dev)
	res, err := s.MinSwaps(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SwapCount < 1 {
		t.Errorf("K1,5 on grid3x3 solved with %d swaps; must need >= 1", res.SwapCount)
	}
	if err := router.Validate(c, dev, &res.Result); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetSurfacesAsError(t *testing.T) {
	// A deliberately hard instance with a tiny conflict budget.
	c := circuit.New(9)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		a, b := rng.Intn(9), rng.Intn(9)
		if a != b {
			c.MustAppend(circuit.NewCX(a, b))
		}
	}
	s, err := New(c, arch.Grid3x3(), Options{MaxConflicts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Decide(0); err == nil {
		t.Skip("instance solved within one conflict; nothing to assert")
	}
}

// Property: on random small circuits, the minimal swap count found by the
// SAT solver is achievable (witness validates) and k-1 is infeasible.
func TestMinSwapsIsExactOnRandomCircuits(t *testing.T) {
	if testing.Short() {
		t.Skip("exact search in -short mode")
	}
	rng := rand.New(rand.NewSource(99))
	devices := []*arch.Device{arch.Line(5), arch.Ring(6), arch.Grid3x3()}
	for iter := 0; iter < 12; iter++ {
		dev := devices[iter%len(devices)]
		nq := dev.NumQubits()
		c := circuit.New(nq)
		for i := 0; i < 8+rng.Intn(6); i++ {
			a, b := rng.Intn(nq), rng.Intn(nq)
			if a == b {
				continue
			}
			c.MustAppend(circuit.NewCX(a, b))
		}
		if c.NumGates() == 0 {
			continue
		}
		s := mustSolver(t, c, dev)
		res, err := s.MinSwaps(6)
		if err != nil {
			t.Fatalf("iter %d (%s): %v", iter, dev.Name(), err)
		}
		if err := router.Validate(c, dev, &res.Result); err != nil {
			t.Fatalf("iter %d: witness invalid: %v", iter, err)
		}
		if res.SwapCount > 0 {
			ok, _, err := s.Decide(res.SwapCount - 1)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				t.Fatalf("iter %d: k=%d claimed minimal but k-1 feasible", iter, res.SwapCount)
			}
		}
	}
}

func TestBlockScheduleConsistent(t *testing.T) {
	c := circuit.New(3)
	c.MustAppend(circuit.NewCX(0, 1), circuit.NewCX(1, 2), circuit.NewCX(0, 2))
	s := mustSolver(t, c, arch.Line(4))
	ok, res, err := s.Decide(2)
	if err != nil || !ok {
		t.Fatalf("Decide(2): ok=%v err=%v", ok, err)
	}
	// Dependencies: node blocks must be non-decreasing along DAG edges.
	dag := circuit.NewDAG(c)
	for v := 0; v < dag.N(); v++ {
		for _, p := range dag.Preds[v] {
			if res.BlockOfGate[p] > res.BlockOfGate[v] {
				t.Fatalf("dependency inverted: pred block %d > succ block %d", res.BlockOfGate[p], res.BlockOfGate[v])
			}
		}
	}
	if len(res.SwapEdges) != 2 {
		t.Errorf("SwapEdges len=%d want 2", len(res.SwapEdges))
	}
}

// The incremental engine (one persistent solver, grown encoding,
// assumption-selected bounds) and the legacy per-k re-encode path must
// agree on every verdict and every minimal swap count.
func TestIncrementalMatchesPerKReencode(t *testing.T) {
	if testing.Short() {
		t.Skip("exact cross-check in -short mode")
	}
	rng := rand.New(rand.NewSource(17))
	devices := []*arch.Device{arch.Line(5), arch.Ring(6), arch.Grid3x3()}
	for iter := 0; iter < 8; iter++ {
		dev := devices[iter%len(devices)]
		nq := dev.NumQubits()
		c := circuit.New(nq)
		for i := 0; i < 6+rng.Intn(6); i++ {
			a, b := rng.Intn(nq), rng.Intn(nq)
			if a != b {
				c.MustAppend(circuit.NewCX(a, b))
			}
		}
		if c.NumGates() == 0 {
			continue
		}
		inc := mustSolver(t, c, dev)
		fresh, err := New(c, dev, Options{NonIncremental: true})
		if err != nil {
			t.Fatal(err)
		}
		// Query bounds out of order to exercise assumption re-selection.
		for _, k := range []int{2, 0, 3, 1, 2} {
			okI, _, err := inc.Decide(k)
			if err != nil {
				t.Fatal(err)
			}
			okF, _, err := fresh.Decide(k)
			if err != nil {
				t.Fatal(err)
			}
			if okI != okF {
				t.Fatalf("iter %d (%s) k=%d: incremental=%v per-k=%v", iter, dev.Name(), k, okI, okF)
			}
		}
		resI, errI := inc.MinSwaps(5)
		resF, errF := fresh.MinSwaps(5)
		if (errI == nil) != (errF == nil) {
			t.Fatalf("iter %d: MinSwaps err mismatch: %v vs %v", iter, errI, errF)
		}
		if errI == nil && resI.SwapCount != resF.SwapCount {
			t.Fatalf("iter %d: MinSwaps %d vs %d", iter, resI.SwapCount, resF.SwapCount)
		}
	}
}

// MinSwaps with the lower-bound shortcut must find the same minimum as
// the paper-faithful full sweep, and LowerBound itself must never exceed
// the true optimum.
func TestMinSwapsLowerBoundAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("exact search in -short mode")
	}
	rng := rand.New(rand.NewSource(43))
	devices := []*arch.Device{arch.Line(4), arch.Line(5), arch.Grid3x3()}
	for iter := 0; iter < 10; iter++ {
		dev := devices[iter%len(devices)]
		nq := dev.NumQubits()
		c := circuit.New(nq)
		for i := 0; i < 5+rng.Intn(6); i++ {
			a, b := rng.Intn(nq), rng.Intn(nq)
			if a != b {
				c.MustAppend(circuit.NewCX(a, b))
			}
		}
		if c.NumGates() == 0 {
			continue
		}
		full := mustSolver(t, c, dev)
		resFull, err := full.MinSwaps(6)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		shortcut, err := New(c, dev, Options{UseLowerBound: true})
		if err != nil {
			t.Fatal(err)
		}
		if lb := shortcut.LowerBound(); lb > resFull.SwapCount {
			t.Fatalf("iter %d: LowerBound()=%d exceeds optimum %d", iter, lb, resFull.SwapCount)
		}
		resLB, err := shortcut.MinSwaps(6)
		if err != nil {
			t.Fatalf("iter %d (lower-bound path): %v", iter, err)
		}
		if resLB.SwapCount != resFull.SwapCount {
			t.Fatalf("iter %d: lower-bound path found %d, full sweep %d",
				iter, resLB.SwapCount, resFull.SwapCount)
		}
	}
}

func TestLowerBoundTriangleOnLine(t *testing.T) {
	// The Figure 1 triangle cannot embed in a line: bound must be 1.
	c := circuit.New(3)
	c.MustAppend(circuit.NewCX(0, 1), circuit.NewCX(1, 2), circuit.NewCX(0, 2))
	if lb := mustSolver(t, c, arch.Line(4)).LowerBound(); lb != 1 {
		t.Errorf("LowerBound=%d want 1", lb)
	}
	// A path circuit embeds directly: bound must be 0.
	p := circuit.New(3)
	p.MustAppend(circuit.NewCX(0, 1), circuit.NewCX(1, 2))
	if lb := mustSolver(t, p, arch.Line(4)).LowerBound(); lb != 0 {
		t.Errorf("LowerBound=%d want 0", lb)
	}
}

func TestLowerBoundDenseCircuit(t *testing.T) {
	// All-pairs interactions over 9 qubits on grid3x3: the interaction
	// graph has 36 edges against 12 coupling edges with max degree 4, so
	// the adjacency-capacity bound gives ceil((36-12)/(2*4-2)) = 4.
	c := circuit.New(9)
	for a := 0; a < 9; a++ {
		for b := a + 1; b < 9; b++ {
			c.MustAppend(circuit.NewCX(a, b))
		}
	}
	if lb := mustSolver(t, c, arch.Grid3x3()).LowerBound(); lb != 4 {
		t.Errorf("LowerBound=%d want 4", lb)
	}
}

// The exported DIMACS formula must agree with the live solver: SAT at the
// optimum, UNSAT below it.
func TestExportDIMACSAgreesWithDecide(t *testing.T) {
	if testing.Short() {
		t.Skip("DIMACS cross-check in -short mode")
	}
	c := circuit.New(3)
	c.MustAppend(circuit.NewCX(0, 1), circuit.NewCX(1, 2), circuit.NewCX(0, 2))
	s := mustSolver(t, c, arch.Line(4))
	for k, want := range map[int]sat.Status{0: sat.Unsat, 1: sat.Sat} {
		var sb strings.Builder
		if err := s.ExportDIMACS(&sb, k); err != nil {
			t.Fatal(err)
		}
		f, err := sat.ParseDIMACS(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		if got := f.Solve(); got != want {
			t.Fatalf("k=%d: DIMACS says %v, want %v", k, got, want)
		}
	}
	if err := s.ExportDIMACS(&strings.Builder{}, -1); err == nil {
		t.Fatal("negative k accepted")
	}
}

// Round-trip drift check: the exported formula (incremental encoding with
// activation and finalization assumptions asserted as unit clauses) must
// reparse cleanly and reproduce the live engine's verdict at every bound,
// on both the incremental and the per-k path.
func TestExportDIMACSRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("DIMACS round-trip in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	devices := []*arch.Device{arch.Line(4), arch.Ring(5)}
	for iter := 0; iter < 4; iter++ {
		dev := devices[iter%len(devices)]
		nq := dev.NumQubits()
		c := circuit.New(nq)
		for i := 0; i < 4+rng.Intn(4); i++ {
			a, b := rng.Intn(nq), rng.Intn(nq)
			if a != b {
				c.MustAppend(circuit.NewCX(a, b))
			}
		}
		if c.NumGates() == 0 {
			continue
		}
		inc := mustSolver(t, c, dev)
		fresh, err := New(c, dev, Options{NonIncremental: true})
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 2; k++ {
			var sb strings.Builder
			if err := inc.ExportDIMACS(&sb, k); err != nil {
				t.Fatal(err)
			}
			f, err := sat.ParseDIMACS(strings.NewReader(sb.String()))
			if err != nil {
				t.Fatalf("iter %d k=%d: reparse: %v", iter, k, err)
			}
			got := f.Solve()
			okI, _, err := inc.Decide(k)
			if err != nil {
				t.Fatal(err)
			}
			okF, _, err := fresh.Decide(k)
			if err != nil {
				t.Fatal(err)
			}
			want := sat.Unsat
			if okI {
				want = sat.Sat
			}
			if got != want {
				t.Fatalf("iter %d k=%d: DIMACS says %v, incremental Decide says %v", iter, k, got, want)
			}
			if okI != okF {
				t.Fatalf("iter %d k=%d: incremental=%v per-k=%v", iter, k, okI, okF)
			}
		}
	}
}

func TestDecideCtxCancellationDistinctFromBudget(t *testing.T) {
	// A dead context surfaces as a context error, not as the conflict-
	// budget message, so callers can retry on deadline but trust budget
	// exhaustion as a configuration signal.
	c := circuit.New(9)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25; i++ {
		a, b := rng.Intn(9), rng.Intn(9)
		if a != b {
			c.MustAppend(circuit.NewCX(a, b))
		}
	}
	s, err := New(c, arch.Grid3x3(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = s.DecideCtx(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The incremental encoding must remain usable after cancellation.
	ok, _, err := s.DecideCtx(context.Background(), 0)
	if err != nil {
		t.Fatalf("post-cancel decide: %v", err)
	}
	_ = ok
}

func TestVerifyOptimalCtxDeadline(t *testing.T) {
	// A deliberately hard instance under a tiny deadline: the SAT search
	// must stop and report the deadline within a sane wall-clock bound.
	c := circuit.New(9)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 40; i++ {
		a, b := rng.Intn(9), rng.Intn(9)
		if a != b {
			c.MustAppend(circuit.NewCX(a, b))
		}
	}
	s, err := New(c, arch.Grid3x3(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = s.VerifyOptimalCtx(ctx, 9)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("verification ran %v past a 10ms deadline", elapsed)
	}
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		// The solver reached a verdict before the deadline fired.
		t.Skipf("instance decided within the deadline (err=%v); nothing to assert", err)
	}
}
