// Command qubikos-eval reproduces the paper's Figure 4: it generates
// QUBIKOS suites on the chosen architectures, runs the four QLS tools
// (LightSABRE, ML-QLS, QMAP-style, t|ket⟩-style), and prints per-cell
// optimality-gap tables plus the abstract-style per-tool averages.
//
// Usage:
//
//	qubikos-eval                                  # CI-scale run, all devices
//	qubikos-eval -circuits 10 -trials 64          # closer to paper scale
//	qubikos-eval -arch rochester53 -csv out.csv   # one subplot, CSV export
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
)

func main() {
	archName := flag.String("arch", "all", "device (aspen4, sycamore54, rochester53, eagle127) or all")
	circuits := flag.Int("circuits", 3, "circuits per swap count (paper: 10)")
	trials := flag.Int("trials", 8, "LightSABRE trials (paper: 1000)")
	swapList := flag.String("swaps", "5,10,15,20", "comma-separated optimal swap counts")
	seed := flag.Int64("seed", 1, "base random seed")
	csvPath := flag.String("csv", "", "also write the cells as CSV to this file")
	flag.Parse()

	counts, err := parseCounts(*swapList)
	if err != nil {
		fatal(err)
	}

	suites := harness.PaperSuites(*circuits, *seed)
	if *archName != "all" {
		dev, err := arch.ByName(*archName)
		if err != nil {
			fatal(err)
		}
		kept := suites[:0]
		for _, s := range suites {
			if s.Device.Name() == dev.Name() {
				kept = append(kept, s)
			}
		}
		if len(kept) == 0 {
			fatal(fmt.Errorf("device %q is not part of the Figure 4 suites", *archName))
		}
		suites = kept
	}
	for i := range suites {
		suites[i].SwapCounts = counts
	}

	tools := harness.DefaultTools(*trials)
	var figs []*harness.Figure
	for _, cfg := range suites {
		t0 := time.Now()
		fig, err := harness.RunFigure(cfg, tools)
		if err != nil {
			fatal(err)
		}
		figs = append(figs, fig)
		harness.RenderFigure(os.Stdout, fig)
		fmt.Printf("(%s in %v)\n\n", cfg.Device.Name(), time.Since(t0).Round(time.Millisecond))
	}
	harness.RenderAbstract(os.Stdout, harness.AbstractGaps(figs))
	fmt.Println("\nBest-tool gap per device:")
	for _, d := range harness.DeviceGaps(figs) {
		fmt.Printf("  %-12s best=%-12s %9.2fx\n", d.Device, d.BestTool, d.BestRatio)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for i, fig := range figs {
			if i == 0 {
				harness.RenderFigureCSV(f, fig)
			} else {
				// Skip the header for subsequent figures.
				var sb strings.Builder
				harness.RenderFigureCSV(&sb, fig)
				lines := strings.SplitN(sb.String(), "\n", 2)
				if len(lines) == 2 {
					fmt.Fprint(f, lines[1])
				}
			}
		}
		fmt.Println("wrote", *csvPath)
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad swap count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-eval:", err)
	os.Exit(1)
}
