// Command qubikos-eval reproduces the paper's Figure 4 and its
// multi-metric extensions: it obtains benchmark suites from a registered
// family on the chosen architectures, runs the selected QLS tools
// (LightSABRE, ML-QLS, QMAP-style, t|ket⟩-style), and prints per-cell
// optimality-gap tables plus the abstract-style per-tool averages. With
// -family queko-depth the suites carry known-optimal routed depth and
// every ratio scores depth instead of SWAPs; each table row is labeled
// with its metric either way.
//
// With -cache-dir the suites come from the content-addressed store:
// generated on the first run, reused bit-identically afterwards — a
// second evaluation of the same configuration generates nothing. Each
// evaluation streams per-instance rows into a JSONL log inside the suite
// directory (keyed by tool set, trials and seed), so an interrupted run
// resumes where it stopped; -jsonl additionally copies the rows to a
// file of your choosing. With -suite the command evaluates one stored
// suite by content hash instead of the Figure-4 configurations.
//
// Usage:
//
//	qubikos-eval                                  # CI-scale run, all devices
//	qubikos-eval -circuits 10 -trials 64          # closer to paper scale
//	qubikos-eval -arch rochester53 -csv out.csv   # one subplot, CSV export
//	qubikos-eval -tools lightsabre,tket           # a tool subset
//	qubikos-eval -family queko-depth -depths 8,16 # depth-objective suites
//	qubikos-eval -cache-dir cache                 # store-backed, resumable
//	qubikos-eval -cache-dir cache -suite <hash>   # one stored suite
//	qubikos-eval -trace out.json                  # Chrome trace of the run
//
// Every run prints a wall-time summary table at the end: per (phase,
// span, tool), how many spans ran and their total/mean/max durations.
// -trace additionally exports every span as Chrome trace-event JSON for
// Perfetto or chrome://tracing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/family"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/suite"
)

func main() {
	archName := flag.String("arch", "all", "device (aspen4, sycamore54, rochester53, eagle127) or all")
	famName := flag.String("family", "qubikos", "benchmark family: qubikos (optimal swaps) or queko-depth (optimal depth)")
	circuits := flag.Int("circuits", 3, "circuits per grid value (paper: 10)")
	trials := flag.Int("trials", 8, "LightSABRE trials (paper: 1000)")
	toolList := flag.String("tools", "", "comma-separated tool subset (default: all registered tools)")
	swapList := flag.String("swaps", "5,10,15,20", "comma-separated optimal swap counts (swap-metric families)")
	depthList := flag.String("depths", "8,16,24", "comma-separated optimal routed depths (depth-metric families)")
	seed := flag.Int64("seed", 1, "base random seed")
	csvPath := flag.String("csv", "", "also write the cells as CSV to this file")
	cacheDir := flag.String("cache-dir", "", "suite store root; empty regenerates suites inline (legacy)")
	suiteHash := flag.String("suite", "", "evaluate one stored suite by content hash (requires -cache-dir)")
	jsonlPath := flag.String("jsonl", "", "also stream per-instance result rows to this JSONL file (store mode)")
	workers := flag.Int("workers", 1, "parallel evaluation workers (store mode)")
	toolTimeout := flag.Duration("tool-timeout", 0, "per-(tool, instance) routing budget; a tool over budget becomes a failure row instead of hanging the run (0 = unlimited)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in Perfetto or chrome://tracing)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	// Profiling hooks for perf work on real eval traffic: both flags are
	// off by default and cost nothing when unset. fatal() exits without
	// running defers, so an aborted run leaves a truncated CPU profile —
	// acceptable for a diagnostics channel.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	// Every run is traced: spans feed the wall-time summary printed at
	// the end, and -trace additionally exports them as Chrome trace-event
	// JSON. SIGINT/SIGTERM cancel the context: store-backed evaluation
	// streams durable rows as it goes, so an interrupted run resumes
	// where it stopped instead of losing the partial figure.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	tr := obs.New(0)
	ctx = obs.NewContext(ctx, tr)

	fam, err := family.Resolve(*famName)
	if err != nil {
		fatal(err)
	}
	gridFlag := *swapList
	if fam.Metric == family.Depth {
		gridFlag = *depthList
	}
	grid, err := parseGrid(gridFlag, fam.MinOptimal)
	if err != nil {
		fatal(err)
	}

	if *suiteHash != "" && *cacheDir == "" {
		fatal(fmt.Errorf("-suite requires -cache-dir"))
	}

	var store *suite.Store
	if *cacheDir != "" {
		// Verify mirrors the inline path: PaperSuites runs the structural
		// verifier on every generated benchmark, so store-backed
		// generation does too (cache hits cost nothing either way).
		if store, err = suite.Open(*cacheDir, suite.StoreOptions{Verify: true}); err != nil {
			fatal(err)
		}
	}
	// Unknown tool names are a hard error listing the registered tools —
	// never a silent skip that would quietly shrink the comparison.
	tools, err := harness.SelectTools(*toolList, *trials)
	if err != nil {
		fatal(err)
	}

	var figs []*harness.Figure
	if *suiteHash != "" {
		st, err := store.Lookup(*suiteHash)
		if err != nil {
			fatal(err)
		}
		fig := evalStored(ctx, store, st, tools, *trials, *seed, *workers, *toolTimeout, *jsonlPath)
		figs = append(figs, fig)
		harness.RenderFigure(os.Stdout, fig)
	} else {
		suites := harness.PaperSuites(*circuits, *seed)
		if *archName != "all" {
			dev, err := arch.ByName(*archName)
			if err != nil {
				fatal(err)
			}
			kept := suites[:0]
			for _, s := range suites {
				if s.Device.Name() == dev.Name() {
					kept = append(kept, s)
				}
			}
			if len(kept) == 0 {
				fatal(fmt.Errorf("device %q is not part of the Figure 4 suites", *archName))
			}
			suites = kept
		}
		for i := range suites {
			suites[i].Family = fam.ID
			suites[i].SwapCounts = grid
		}

		for _, cfg := range suites {
			t0 := time.Now()
			var fig *harness.Figure
			if store != nil {
				st, err := store.EnsureCtx(ctx, cfg.Manifest())
				if err != nil {
					fatal(err)
				}
				status := "generated"
				if st.Cached {
					status = "cache hit"
				}
				fmt.Printf("suite %s (%s)\n", st.Hash, status)
				fig = evalStored(ctx, store, st, tools, *trials, *seed, *workers, *toolTimeout, *jsonlPath)
			} else {
				fig, err = harness.RunFigureCtx(ctx, cfg, tools,
					harness.EvalConfig{Seed: cfg.Seed, ToolTimeout: *toolTimeout})
				if err != nil {
					fatal(err)
				}
			}
			figs = append(figs, fig)
			harness.RenderFigure(os.Stdout, fig)
			fmt.Printf("(%s in %v)\n\n", cfg.Device.Name(), time.Since(t0).Round(time.Millisecond))
		}
	}

	harness.RenderAbstract(os.Stdout, harness.AbstractGaps(figs))
	fmt.Println("\nBest-tool gap per device:")
	for _, d := range harness.DeviceGaps(figs) {
		fmt.Printf("  %-12s best=%-12s %9.2fx\n", d.Device, d.BestTool, d.BestRatio)
	}

	if rows := tr.Summary(); len(rows) > 0 {
		fmt.Println("\nWall-time by phase and tool:")
		obs.RenderSummary(os.Stdout, rows)
	}
	if *tracePath != "" {
		if err := writeTrace(tr, *tracePath); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *tracePath)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		for i, fig := range figs {
			if i == 0 {
				harness.RenderFigureCSV(f, fig)
			} else {
				// Skip the header for subsequent figures.
				var sb strings.Builder
				harness.RenderFigureCSV(&sb, fig)
				lines := strings.SplitN(sb.String(), "\n", 2)
				if len(lines) == 2 {
					fmt.Fprint(f, lines[1])
				}
			}
		}
		fmt.Println("wrote", *csvPath)
	}
}

// writeTrace exports a trace as Chrome trace-event JSON, warning when
// the ring buffer overwrote early spans.
func writeTrace(tr *obs.Trace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteChrome(f); err != nil {
		return err
	}
	if n := tr.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "qubikos-eval: trace buffer overflowed; the %d oldest spans were dropped\n", n)
	}
	return f.Close()
}

// evalStored runs the resumable store-backed evaluation of one suite,
// optionally mirroring new rows to an external JSONL file.
func evalStored(ctx context.Context, store *suite.Store, st *suite.Suite, tools []harness.ToolSpec, trials int, seed int64, workers int, toolTimeout time.Duration, jsonlPath string) *harness.Figure {
	var keyParts []string
	for _, t := range tools {
		keyParts = append(keyParts, t.Name)
	}
	keyParts = append(keyParts, fmt.Sprintf("trials=%d", trials), fmt.Sprintf("seed=%d", seed))
	opts := harness.StoredEvalOptions{
		Seed:        seed,
		Workers:     workers,
		Key:         harness.EvalKey(keyParts...),
		ToolTimeout: toolTimeout,
	}
	var mirror *suite.EvalLog
	if jsonlPath != "" {
		var err error
		if mirror, err = suite.OpenEvalLog(jsonlPath); err != nil {
			fatal(err)
		}
		defer mirror.Close()
		opts.OnRow = func(r suite.Row) {
			if err := mirror.Append(r); err != nil {
				fatal(fmt.Errorf("writing %s: %w", jsonlPath, err))
			}
		}
	}
	fig, err := harness.RunStoredEvalCtx(ctx, store, st, tools, opts)
	if err != nil {
		fatal(err)
	}
	return fig
}

func parseGrid(s string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 || n < min {
			return nil, fmt.Errorf("bad grid value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-eval:", err)
	os.Exit(1)
}
