// Command qubikos-route routes a benchmark instance (written by
// qubikos-gen) with one of the QLS tools and reports the achieved value
// and optimality gap in the instance's family metric: SWAP count for
// qubikos instances, routed depth for queko-depth instances (both are
// always printed). With -from-optimal it starts the router from the
// instance's planted optimal mapping — the paper's standalone-router
// evaluation mode.
//
// With -portfolio the command races the registered tools concurrently
// under a -deadline budget and reports the best validated result plus a
// per-racer outcome table (anytime semantics: the deadline degrades to
// best-so-far; only "no tool produced a valid result" exits non-zero).
// -threshold ends the race early once a result is within that ratio of
// the instance's proven optimum, and -hedge staggers expensive tools
// behind cheap ones.
//
// Usage:
//
//	qubikos-route -dir bench -base qubikos_aspen4_s5_g300_i000 -tool lightsabre
//	qubikos-route -dir bench -base ... -tool tket -from-optimal
//	qubikos-route -dir bench -base ... -tool qmap -timeout 30s
//	qubikos-route -dir bench -base ... -trace out.json
//	qubikos-route -dir bench -base ... -portfolio -deadline 5s -threshold 1.2
//	qubikos-route -dir bench -base ... -portfolio -tools lightsabre,tket -hedge 0
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/bmt"
	"repro/internal/family"
	"repro/internal/harness"
	"repro/internal/mlqls"
	"repro/internal/obs"
	"repro/internal/portfolio"
	"repro/internal/qmap"
	"repro/internal/router"
	"repro/internal/sabre"
	"repro/internal/tket"
)

// routeTools builds the tool registry for this command: the four paper
// tools plus the Section III-C VF2 + token-swapping baseline.
func routeTools(trials int, seed int64) map[string]router.Router {
	return map[string]router.Router{
		"lightsabre": sabre.New(sabre.Options{Trials: trials, Seed: seed}),
		"ml-qls":     mlqls.New(mlqls.Options{Seed: seed}),
		"qmap":       qmap.New(qmap.Options{MaxNodes: 2000, Seed: seed}),
		"tket":       tket.New(tket.Options{Seed: seed}),
		"vf2-ts":     bmt.New(bmt.Options{}),
	}
}

func main() {
	dir := flag.String("dir", ".", "directory holding the instance files")
	base := flag.String("base", "", "instance base name (without .qasm/.json)")
	tool := flag.String("tool", "lightsabre", "lightsabre, ml-qls, qmap, tket, vf2-ts")
	trials := flag.Int("trials", 32, "LightSABRE trials")
	seed := flag.Int64("seed", 1, "router seed")
	fromOptimal := flag.Bool("from-optimal", false, "route from the planted optimal initial mapping")
	timeout := flag.Duration("timeout", 0, "routing budget; an over-budget run exits non-zero instead of hanging (0 = unlimited; per-racer budget with -portfolio)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the routing run to this file")
	usePortfolio := flag.Bool("portfolio", false, "race the registered tools concurrently and keep the best validated result")
	toolsList := flag.String("tools", "", "comma-separated tool subset for -portfolio (default: all registered)")
	deadline := flag.Duration("deadline", 30*time.Second, "race budget for -portfolio; when it fires the best result so far wins")
	threshold := flag.Float64("threshold", 0, "win-condition ratio vs the proven optimum for -portfolio (0 = race to completion)")
	hedge := flag.Duration("hedge", 100*time.Millisecond, "hedge stagger between tool cost tiers for -portfolio (0 = launch everything at once)")
	flag.Parse()

	if *base == "" {
		fatal(fmt.Errorf("-base is required"))
	}
	inst, err := family.ReadInstance(*dir, *base)
	if err != nil {
		fatal(err)
	}

	// The routing honours SIGINT/SIGTERM through one context; routers
	// that implement the ctx-aware interfaces stop mid-search, legacy
	// ones are at least refused up front when the budget is already
	// spent.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tr *obs.Trace
	if *tracePath != "" {
		tr = obs.New(0)
		ctx = obs.NewContext(ctx, tr)
	}

	if *usePortfolio {
		err := runPortfolio(ctx, inst, *base, *toolsList, *trials, *seed, *deadline, *hedge, *timeout, *threshold)
		if terr := writeTrace(tr, *tracePath); terr != nil {
			fatal(terr)
		}
		if err != nil {
			fatal(err)
		}
		return
	}

	tools := routeTools(*trials, *seed)
	r, ok := tools[*tool]
	if !ok {
		names := make([]string, 0, len(tools))
		for name := range tools {
			names = append(names, name)
		}
		sort.Strings(names)
		// An unknown tool is rejected with the registry listed — never
		// silently mapped to a default.
		fatal(fmt.Errorf("unknown tool %q (registered: %s)", *tool, strings.Join(names, ", ")))
	}

	// In single-tool mode -timeout bounds the whole routing call.
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sp, ctx := obs.Begin(ctx, "route", *tool)
	sp.Arg("instance", *base)

	var res *router.Result
	if *fromOptimal {
		pr, ok := r.(router.PlacedRouter)
		if !ok {
			fatal(fmt.Errorf("tool %q cannot route from a fixed mapping", *tool))
		}
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		res, err = pr.RouteFrom(inst.Circuit, inst.Device, router.Mapping(inst.Meta.InitialMapping))
	} else {
		res, err = router.RouteWithContext(ctx, r, inst.Circuit, inst.Device)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fatal(fmt.Errorf("routing exceeded the -timeout budget %v", *timeout))
		}
		fatal(err)
	}
	if ins, ok := r.(router.Instrumented); ok {
		c := ins.Counters()
		sp.ArgInt("decisions", c.Decisions)
		sp.ArgInt("candidates", c.Candidates)
		sp.ArgInt("restarts", c.Restarts)
	}
	sp.End()
	if err := writeTrace(tr, *tracePath); err != nil {
		fatal(err)
	}
	if err := router.Validate(inst.Circuit, inst.Device, res); err != nil {
		fatal(fmt.Errorf("tool produced an invalid result: %w", err))
	}

	metric := inst.Family.Metric
	fmt.Printf("instance: %s on %s (family %s, %d two-qubit gates, optimal %s %d)\n",
		*base, inst.Meta.Device, inst.Family.ID, inst.Meta.TwoQubitGates, metric, inst.Meta.Optimal())
	mode := "full layout synthesis"
	if *fromOptimal {
		mode = "routing from the optimal mapping"
	}
	fmt.Printf("%s (%s): %d SWAPs, routed depth %d -> %s gap %.2fx\n",
		res.Tool, mode, res.SwapCount, res.RoutedDepth(), metric,
		metric.Ratio(metric.Achieved(res), inst.Meta.Optimal()))
}

// runPortfolio races the selected tools over the instance and prints
// the winner plus a per-racer outcome table. The harness tool registry
// supplies the constructors so a portfolio winner matches what the
// evaluation pipeline would produce for the same seed.
func runPortfolio(ctx context.Context, inst *family.Loaded, base, toolsList string, trials int, seed int64, deadline, hedge, toolTimeout time.Duration, threshold float64) error {
	specs, err := harness.SelectTools(toolsList, trials)
	if err != nil {
		return err
	}
	entries := make([]portfolio.Entry, 0, len(specs))
	for _, t := range specs {
		entries = append(entries, portfolio.Entry{
			Name: t.Name,
			Make: t.Make,
			Tier: portfolio.DefaultTier(t.Name),
		})
	}
	p, err := router.Prepare(inst.Circuit, inst.Device)
	if err != nil {
		return err
	}
	metric := inst.Family.Metric
	res, err := portfolio.Run(ctx, p, entries, portfolio.Options{
		Deadline:    deadline,
		ToolTimeout: toolTimeout,
		Threshold:   threshold,
		Optimal:     inst.Meta.Optimal(),
		Metric:      metric,
		HedgeDelay:  hedge,
		Seed:        seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("instance: %s on %s (family %s, %d two-qubit gates, optimal %s %d)\n",
		base, inst.Meta.Device, inst.Family.ID, inst.Meta.TwoQubitGates, metric, inst.Meta.Optimal())
	note := ""
	if res.DeadlineHit {
		note = ", deadline hit"
	}
	fmt.Printf("winner: %s (%s%s): %d SWAPs, routed depth %d -> %s gap %.2fx in %dms\n",
		res.Tool, res.Reason, note, res.Winner.SwapCount, res.Winner.RoutedDepth(), metric,
		metric.Ratio(res.Score, inst.Meta.Optimal()), res.ElapsedMS)
	fmt.Println("racers:")
	for _, r := range res.Racers {
		line := fmt.Sprintf("  %-12s tier %d  %-10s %6dms", r.Tool, r.Tier, r.Outcome, r.ElapsedMS)
		if r.Outcome == portfolio.OutcomeOK {
			line += fmt.Sprintf("  %s %d (%.2fx)", metric, r.Score, r.Ratio)
		}
		if r.Winner {
			line += "  <- winner"
		}
		if r.Err != "" {
			line += "  [" + r.Err + "]"
		}
		fmt.Println(line)
	}
	return nil
}

// writeTrace exports the run's spans as Chrome trace-event JSON when
// tracing was requested; a nil trace is a no-op.
func writeTrace(tr *obs.Trace, path string) error {
	if tr == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-route:", err)
	os.Exit(1)
}
