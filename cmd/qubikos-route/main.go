// Command qubikos-route routes a benchmark instance (written by
// qubikos-gen) with one of the QLS tools and reports the achieved value
// and optimality gap in the instance's family metric: SWAP count for
// qubikos instances, routed depth for queko-depth instances (both are
// always printed). With -from-optimal it starts the router from the
// instance's planted optimal mapping — the paper's standalone-router
// evaluation mode.
//
// Usage:
//
//	qubikos-route -dir bench -base qubikos_aspen4_s5_g300_i000 -tool lightsabre
//	qubikos-route -dir bench -base ... -tool tket -from-optimal
//	qubikos-route -dir bench -base ... -tool qmap -timeout 30s
//	qubikos-route -dir bench -base ... -trace out.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"repro/internal/bmt"
	"repro/internal/family"
	"repro/internal/mlqls"
	"repro/internal/obs"
	"repro/internal/qmap"
	"repro/internal/router"
	"repro/internal/sabre"
	"repro/internal/tket"
)

// routeTools builds the tool registry for this command: the four paper
// tools plus the Section III-C VF2 + token-swapping baseline.
func routeTools(trials int, seed int64) map[string]router.Router {
	return map[string]router.Router{
		"lightsabre": sabre.New(sabre.Options{Trials: trials, Seed: seed}),
		"ml-qls":     mlqls.New(mlqls.Options{Seed: seed}),
		"qmap":       qmap.New(qmap.Options{MaxNodes: 2000, Seed: seed}),
		"tket":       tket.New(tket.Options{Seed: seed}),
		"vf2-ts":     bmt.New(bmt.Options{}),
	}
}

func main() {
	dir := flag.String("dir", ".", "directory holding the instance files")
	base := flag.String("base", "", "instance base name (without .qasm/.json)")
	tool := flag.String("tool", "lightsabre", "lightsabre, ml-qls, qmap, tket, vf2-ts")
	trials := flag.Int("trials", 32, "LightSABRE trials")
	seed := flag.Int64("seed", 1, "router seed")
	fromOptimal := flag.Bool("from-optimal", false, "route from the planted optimal initial mapping")
	timeout := flag.Duration("timeout", 0, "routing budget; an over-budget run exits non-zero instead of hanging (0 = unlimited)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the routing run to this file")
	flag.Parse()

	if *base == "" {
		fatal(fmt.Errorf("-base is required"))
	}
	inst, err := family.ReadInstance(*dir, *base)
	if err != nil {
		fatal(err)
	}

	tools := routeTools(*trials, *seed)
	r, ok := tools[*tool]
	if !ok {
		names := make([]string, 0, len(tools))
		for name := range tools {
			names = append(names, name)
		}
		sort.Strings(names)
		// An unknown tool is rejected with the registry listed — never
		// silently mapped to a default.
		fatal(fmt.Errorf("unknown tool %q (registered: %s)", *tool, strings.Join(names, ", ")))
	}

	// The routing call honours -timeout and SIGINT/SIGTERM through one
	// context; routers that implement the ctx-aware interfaces stop
	// mid-search, legacy ones are at least refused up front when the
	// budget is already spent.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var tr *obs.Trace
	if *tracePath != "" {
		tr = obs.New(0)
		ctx = obs.NewContext(ctx, tr)
	}
	sp, ctx := obs.Begin(ctx, "route", *tool)
	sp.Arg("instance", *base)

	var res *router.Result
	if *fromOptimal {
		pr, ok := r.(router.PlacedRouter)
		if !ok {
			fatal(fmt.Errorf("tool %q cannot route from a fixed mapping", *tool))
		}
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		res, err = pr.RouteFrom(inst.Circuit, inst.Device, router.Mapping(inst.Meta.InitialMapping))
	} else {
		res, err = router.RouteWithContext(ctx, r, inst.Circuit, inst.Device)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fatal(fmt.Errorf("routing exceeded the -timeout budget %v", *timeout))
		}
		fatal(err)
	}
	if ins, ok := r.(router.Instrumented); ok {
		c := ins.Counters()
		sp.ArgInt("decisions", c.Decisions)
		sp.ArgInt("candidates", c.Candidates)
		sp.ArgInt("restarts", c.Restarts)
	}
	sp.End()
	if tr != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := tr.WriteChrome(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *tracePath)
	}
	if err := router.Validate(inst.Circuit, inst.Device, res); err != nil {
		fatal(fmt.Errorf("tool produced an invalid result: %w", err))
	}

	metric := inst.Family.Metric
	fmt.Printf("instance: %s on %s (family %s, %d two-qubit gates, optimal %s %d)\n",
		*base, inst.Meta.Device, inst.Family.ID, inst.Meta.TwoQubitGates, metric, inst.Meta.Optimal())
	mode := "full layout synthesis"
	if *fromOptimal {
		mode = "routing from the optimal mapping"
	}
	fmt.Printf("%s (%s): %d SWAPs, routed depth %d -> %s gap %.2fx\n",
		res.Tool, mode, res.SwapCount, res.RoutedDepth(), metric,
		metric.Ratio(metric.Achieved(res), inst.Meta.Optimal()))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-route:", err)
	os.Exit(1)
}
