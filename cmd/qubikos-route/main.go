// Command qubikos-route routes a benchmark instance (written by
// qubikos-gen) with one of the four QLS tools and reports the SWAP count
// and optimality gap. With -from-optimal it starts the router from the
// instance's planted optimal mapping — the paper's standalone-router
// evaluation mode.
//
// Usage:
//
//	qubikos-route -dir bench -base qubikos_aspen4_s5_g300_i000 -tool lightsabre
//	qubikos-route -dir bench -base ... -tool tket -from-optimal
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bmt"
	"repro/internal/mlqls"
	"repro/internal/qmap"
	"repro/internal/qubikos"
	"repro/internal/router"
	"repro/internal/sabre"
	"repro/internal/tket"
)

func main() {
	dir := flag.String("dir", ".", "directory holding the instance files")
	base := flag.String("base", "", "instance base name (without .qasm/.json)")
	tool := flag.String("tool", "lightsabre", "lightsabre, ml-qls, qmap, tket, vf2-ts")
	trials := flag.Int("trials", 32, "LightSABRE trials")
	seed := flag.Int64("seed", 1, "router seed")
	fromOptimal := flag.Bool("from-optimal", false, "route from the planted optimal initial mapping")
	flag.Parse()

	if *base == "" {
		fatal(fmt.Errorf("-base is required"))
	}
	inst, err := qubikos.ReadInstance(*dir, *base)
	if err != nil {
		fatal(err)
	}

	var r router.Router
	switch *tool {
	case "lightsabre":
		r = sabre.New(sabre.Options{Trials: *trials, Seed: *seed})
	case "ml-qls":
		r = mlqls.New(mlqls.Options{Seed: *seed})
	case "qmap":
		r = qmap.New(qmap.Options{MaxNodes: 2000, Seed: *seed})
	case "tket":
		r = tket.New(tket.Options{Seed: *seed})
	case "vf2-ts":
		r = bmt.New(bmt.Options{})
	default:
		fatal(fmt.Errorf("unknown tool %q", *tool))
	}

	var res *router.Result
	if *fromOptimal {
		pr, ok := r.(router.PlacedRouter)
		if !ok {
			fatal(fmt.Errorf("tool %q cannot route from a fixed mapping", *tool))
		}
		res, err = pr.RouteFrom(inst.Circuit, inst.Device, router.Mapping(inst.Meta.InitialMapping))
	} else {
		res, err = r.Route(inst.Circuit, inst.Device)
	}
	if err != nil {
		fatal(err)
	}
	if err := router.Validate(inst.Circuit, inst.Device, res); err != nil {
		fatal(fmt.Errorf("tool produced an invalid result: %w", err))
	}

	fmt.Printf("instance: %s on %s (%d two-qubit gates, optimal swaps %d)\n",
		*base, inst.Meta.Device, inst.Meta.TwoQubitGates, inst.Meta.OptimalSwaps)
	mode := "full layout synthesis"
	if *fromOptimal {
		mode = "routing from the optimal mapping"
	}
	fmt.Printf("%s (%s): %d SWAPs -> gap %.2fx\n",
		res.Tool, mode, res.SwapCount, router.SwapRatio(res.SwapCount, inst.Meta.OptimalSwaps))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-route:", err)
	os.Exit(1)
}
