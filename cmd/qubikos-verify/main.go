// Command qubikos-verify reproduces the paper's Section IV-A optimality
// study: it generates small QUBIKOS instances (≤30 two-qubit gates) on
// Rigetti Aspen-4 and the 3x3 grid and certifies each one with the exact
// SAT-based layout synthesizer — UNSAT at n-1 SWAPs and SAT at n — so a
// zero-deviation table reproduces the paper's "no deviations observed"
// result. It can also verify a single QASM file against a claimed count.
//
// Certification fans out over a worker pool (-workers, default all
// CPUs); each instance owns its incremental SAT solver, so the table is
// identical for any worker count.
//
// With -suite and -cache-dir it instead certifies every instance of a
// stored suite from the content-addressed store: each instance's claimed
// optimum (from its sidecar) is checked exactly, plus the store's
// checksum index — end-to-end assurance that the cached bytes still
// carry the guarantee they were generated with.
//
// Usage:
//
//	qubikos-verify -circuits 10 -seed 7          # the study
//	qubikos-verify -circuits 10 -workers 4       # bounded parallelism
//	qubikos-verify -qasm bench.qasm -arch aspen4 -claim 3
//	qubikos-verify -cache-dir cache -suite <hash>
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/harness"
	"repro/internal/olsq"
	"repro/internal/pool"
	"repro/internal/suite"
)

func main() {
	circuits := flag.Int("circuits", 5, "circuits per (device, swap count) cell (paper: 100)")
	seed := flag.Int64("seed", 7, "base random seed")
	swapList := flag.String("swaps", "1,2,3,4", "comma-separated swap counts")
	qasm := flag.String("qasm", "", "verify one OpenQASM file instead of running the study")
	archName := flag.String("arch", "aspen4", "device for -qasm mode")
	claim := flag.Int("claim", -1, "claimed optimal swap count for -qasm mode")
	maxK := flag.Int("maxk", 8, "search bound when no -claim is given")
	workers := flag.Int("workers", 0, "parallel certification workers (0 = all CPUs)")
	suiteHash := flag.String("suite", "", "certify a stored suite by content hash (requires -cache-dir)")
	cacheDir := flag.String("cache-dir", "", "suite store root for -suite mode")
	flag.Parse()

	if *suiteHash != "" {
		if *cacheDir == "" {
			fatal(fmt.Errorf("-suite requires -cache-dir"))
		}
		verifySuite(*cacheDir, *suiteHash, *workers)
		return
	}

	if *qasm != "" {
		verifyFile(*qasm, *archName, *claim, *maxK)
		return
	}

	cfg := harness.DefaultOptimalityConfig(*circuits, *seed)
	cfg.Workers = *workers
	counts, err := parseCounts(*swapList)
	if err != nil {
		fatal(err)
	}
	cfg.SwapCounts = counts

	t0 := time.Now()
	rows, err := harness.RunOptimalityStudy(cfg)
	if err != nil {
		fatal(err)
	}
	harness.RenderOptimality(os.Stdout, rows)
	total, dev := 0, 0
	for _, r := range rows {
		total += r.Circuits
		dev += r.Deviation
	}
	fmt.Printf("\n%d circuits verified in %v; deviations: %d\n", total, time.Since(t0).Round(time.Millisecond), dev)
	if dev > 0 {
		os.Exit(1)
	}
}

// verifySuite certifies a stored suite end to end: the checksum index
// first (the bytes are the bytes that were generated), then each
// instance's claimed optimum with the exact SAT solver, fanned over a
// worker pool. Any deviation exits non-zero.
func verifySuite(cacheDir, hash string, workers int) {
	store, err := suite.Open(cacheDir, suite.StoreOptions{})
	if err != nil {
		fatal(err)
	}
	st, err := store.Lookup(hash)
	if err != nil {
		fatal(err)
	}
	if err := store.VerifyChecksums(hash); err != nil {
		fatal(err)
	}
	fmt.Printf("suite %s: checksums OK (%d instances)\n", hash, len(st.Instances))

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t0 := time.Now()
	// Every instance is attempted (certification failures are collected,
	// not fail-fast), so the per-index fn always returns nil.
	errs := make([]error, len(st.Instances))
	pool.ParallelFor(len(st.Instances), workers, func(ji int) error {
		ref := st.Instances[ji]
		li, err := store.LoadInstance(hash, ref)
		if err != nil {
			errs[ji] = err
			return nil
		}
		s, err := olsq.New(li.Circuit, li.Device, olsq.Options{})
		if err != nil {
			errs[ji] = fmt.Errorf("%s: %w", ref.Base, err)
			return nil
		}
		if err := s.VerifyOptimal(li.Meta.OptimalSwaps); err != nil {
			errs[ji] = fmt.Errorf("%s: %w", ref.Base, err)
		}
		return nil
	})
	bad := 0
	for _, err := range errs {
		if err != nil {
			bad++
			fmt.Fprintln(os.Stderr, "qubikos-verify:", err)
		}
	}
	fmt.Printf("%d/%d instances certified exactly in %v\n",
		len(st.Instances)-bad, len(st.Instances), time.Since(t0).Round(time.Millisecond))
	if bad > 0 {
		os.Exit(1)
	}
}

func verifyFile(path, archName string, claim, maxK int) {
	devc, err := arch.ByName(archName)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	c, err := circuit.ParseQASM(f)
	if err != nil {
		fatal(err)
	}
	s, err := olsq.New(c, devc, olsq.Options{})
	if err != nil {
		fatal(err)
	}
	if claim >= 0 {
		if err := s.VerifyOptimal(claim); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: optimal SWAP count is exactly %d (verified)\n", path, claim)
		return
	}
	res, err := s.MinSwaps(maxK)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: optimal SWAP count is %d (searched up to %d)\n", path, res.SwapCount, maxK)
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad swap count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-verify:", err)
	os.Exit(1)
}
