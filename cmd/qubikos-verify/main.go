// Command qubikos-verify reproduces the paper's Section IV-A optimality
// study: it generates small QUBIKOS instances (≤30 two-qubit gates) on
// Rigetti Aspen-4 and the 3x3 grid and certifies each one with the exact
// SAT-based layout synthesizer — UNSAT at n-1 SWAPs and SAT at n — so a
// zero-deviation table reproduces the paper's "no deviations observed"
// result. It can also verify a single QASM file against a claimed count.
//
// With -family queko-depth it instead runs the depth family's study:
// generated instances are re-checked against their structural depth
// certificate (the planted mapping executes every gate in place and the
// dependency depth equals the claimed optimum — lower bound meets upper
// bound, no solver needed).
//
// Certification fans out over a worker pool (-workers, default all
// CPUs); each instance owns its verification state, so the table is
// identical for any worker count. The whole run is governed by one
// context: -timeout bounds it and SIGINT/SIGTERM cancels it — the SAT
// solver polls the context between conflicts, so even a deep UNSAT
// search stops promptly instead of hanging the process.
//
// With -suite and -cache-dir it certifies every instance of a stored
// suite from the content-addressed store, dispatching on the suite's
// family: swap-metric suites get the exact SAT check of each claimed
// optimum, depth-metric suites get their structural depth certificate —
// plus the store's checksum index either way, end-to-end assurance that
// the cached bytes still carry the guarantee they were generated with.
//
// Usage:
//
//	qubikos-verify -circuits 10 -seed 7          # the study
//	qubikos-verify -circuits 10 -workers 4       # bounded parallelism
//	qubikos-verify -circuits 100 -timeout 10m    # hard certification budget
//	qubikos-verify -family queko-depth -depths 8,16
//	qubikos-verify -qasm bench.qasm -arch aspen4 -claim 3
//	qubikos-verify -cache-dir cache -suite <hash>
//	qubikos-verify -circuits 5 -trace out.json   # Chrome trace of the run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/family"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/olsq"
	"repro/internal/pool"
	"repro/internal/suite"
)

func main() {
	circuits := flag.Int("circuits", 5, "circuits per (device, grid value) cell (paper: 100)")
	seed := flag.Int64("seed", 7, "base random seed")
	famName := flag.String("family", "qubikos", "benchmark family for the study: qubikos or queko-depth")
	swapList := flag.String("swaps", "1,2,3,4", "comma-separated swap counts (qubikos study)")
	depthList := flag.String("depths", "4,8", "comma-separated routed depths (queko-depth study)")
	qasm := flag.String("qasm", "", "verify one OpenQASM file instead of running the study")
	archName := flag.String("arch", "aspen4", "device for -qasm mode")
	claim := flag.Int("claim", -1, "claimed optimal swap count for -qasm mode")
	maxK := flag.Int("maxk", 8, "search bound when no -claim is given")
	workers := flag.Int("workers", 0, "parallel certification workers (0 = all CPUs)")
	suiteHash := flag.String("suite", "", "certify a stored suite by content hash (requires -cache-dir)")
	cacheDir := flag.String("cache-dir", "", "suite store root for -suite mode")
	timeout := flag.Duration("timeout", 0, "overall certification budget; an over-budget run exits non-zero instead of hanging (0 = unlimited)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in Perfetto or chrome://tracing)")
	flag.Parse()

	// One context governs the whole run: SIGINT/SIGTERM cancels it (the
	// SAT solver polls it between conflicts, so even a hard UNSAT search
	// stops promptly) and -timeout turns it into a deadline.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// -trace attaches a span buffer to the run's context; every certified
	// instance becomes one span carrying its SAT-search counters. fatal()
	// exits without running defers, so a failed run loses its trace —
	// acceptable for a diagnostics channel (cpuprofile behaves the same
	// way in qubikos-eval).
	if *tracePath != "" {
		tr := obs.New(0)
		ctx = obs.NewContext(ctx, tr)
		defer func() {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := tr.WriteChrome(f); err != nil {
				fatal(err)
			}
			fmt.Println("wrote", *tracePath)
		}()
	}

	if *suiteHash != "" {
		if *cacheDir == "" {
			fatal(fmt.Errorf("-suite requires -cache-dir"))
		}
		verifySuite(ctx, *cacheDir, *suiteHash, *workers)
		return
	}

	if *qasm != "" {
		verifyFile(ctx, *qasm, *archName, *claim, *maxK)
		return
	}

	fam, err := family.Resolve(*famName)
	if err != nil {
		fatal(err)
	}
	if fam.Metric == family.Depth {
		counts, err := parseCounts(*depthList)
		if err != nil {
			fatal(err)
		}
		runDepthStudy(ctx, fam, counts, *circuits, *seed, *workers)
		return
	}

	cfg := harness.DefaultOptimalityConfig(*circuits, *seed)
	cfg.Workers = *workers
	counts, err := parseCounts(*swapList)
	if err != nil {
		fatal(err)
	}
	cfg.SwapCounts = counts

	t0 := time.Now()
	rows, err := harness.RunOptimalityStudyCtx(ctx, cfg)
	if err != nil {
		fatal(budgetErr(ctx, err, *timeout))
	}
	harness.RenderOptimality(os.Stdout, rows)
	total, dev := 0, 0
	for _, r := range rows {
		total += r.Circuits
		dev += r.Deviation
	}
	fmt.Printf("\n%d circuits verified in %v; deviations: %d\n", total, time.Since(t0).Round(time.Millisecond), dev)
	if dev > 0 {
		os.Exit(1)
	}
}

// runDepthStudy is the depth family's analogue of the Section IV-A
// study: generate instances on the study devices and re-check each one's
// structural depth certificate through a serialize/parse round trip — the
// exact path a stored suite takes.
func runDepthStudy(ctx context.Context, fam *family.Family, depths []int, circuits int, seed int64, workers int) {
	devices := []*arch.Device{arch.RigettiAspen4(), arch.Grid3x3()}
	type job struct {
		dev *arch.Device
		d   int
		i   int
	}
	var jobs []job
	for _, dev := range devices {
		for _, d := range depths {
			for i := 0; i < circuits; i++ {
				jobs = append(jobs, job{dev: dev, d: d, i: i})
			}
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t0 := time.Now()
	dir, err := os.MkdirTemp("", "queko-study-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	err = pool.ParallelForCtx(ctx, len(jobs), workers, func(ji int) error {
		j := jobs[ji]
		inst, err := fam.Generate(j.dev, family.Options{
			Optimal:             j.d,
			TargetTwoQubitGates: 30,
			Seed:                seed + int64(j.d)*100_000 + int64(j.i),
		})
		if err != nil {
			return fmt.Errorf("generate %s depth=%d: %w", j.dev.Name(), j.d, err)
		}
		if err := inst.Verify(); err != nil {
			return fmt.Errorf("structural verify %s depth=%d: %w", j.dev.Name(), j.d, err)
		}
		base := fmt.Sprintf("j%06d", ji)
		if _, err := family.WriteInstance(dir, base, inst); err != nil {
			return err
		}
		li, err := family.ReadInstanceWithSolution(dir, base)
		if err != nil {
			return err
		}
		if err := li.Certify(); err != nil {
			return fmt.Errorf("depth certificate %s depth=%d: %w", j.dev.Name(), j.d, err)
		}
		return nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Depth-certificate study (family %s):\n", fam.ID)
	fmt.Printf("%-10s %9s %9s %9s\n", "device", "depths", "circuits", "certified")
	for _, dev := range devices {
		fmt.Printf("%-10s %9v %9d %9d\n", dev.Name(), depths, len(depths)*circuits, len(depths)*circuits)
	}
	fmt.Printf("\n%d circuits certified in %v; deviations: 0\n", len(jobs), time.Since(t0).Round(time.Millisecond))
}

// verifySuite certifies a stored suite end to end: the checksum index
// first (the bytes are the bytes that were generated), then each
// instance per its family's metric — the exact SAT solver for
// swap-metric suites, the structural depth certificate for depth-metric
// ones — fanned over a worker pool. Any deviation exits non-zero.
func verifySuite(ctx context.Context, cacheDir, hash string, workers int) {
	store, err := suite.Open(cacheDir, suite.StoreOptions{})
	if err != nil {
		fatal(err)
	}
	st, err := store.Lookup(hash)
	if err != nil {
		fatal(err)
	}
	if err := store.VerifyChecksums(hash); err != nil {
		fatal(err)
	}
	fmt.Printf("suite %s: checksums OK (%d instances, metric %s)\n", hash, len(st.Instances), st.Metric)

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depthMetric := st.Metric == family.Depth
	t0 := time.Now()
	// Every instance is attempted (certification failures are collected,
	// not fail-fast), so the per-index fn always returns nil and the only
	// pool-level error is a cancellation.
	errs := make([]error, len(st.Instances))
	poolErr := pool.ParallelForCtx(ctx, len(st.Instances), workers, func(ji int) error {
		ref := st.Instances[ji]
		sp, ctx := obs.Begin(ctx, "verify", "instance")
		defer sp.End()
		sp.Arg("instance", ref.Base)
		sp.ArgInt("optimal", int64(ref.Optimal))
		if depthMetric {
			li, err := store.LoadInstanceWithSolution(hash, ref)
			if err == nil {
				err = li.Certify()
			}
			if err != nil {
				errs[ji] = fmt.Errorf("%s: %w", ref.Base, err)
			}
			return nil
		}
		li, err := store.LoadInstance(hash, ref)
		if err != nil {
			errs[ji] = err
			return nil
		}
		s, err := olsq.New(li.Circuit, li.Device, olsq.Options{})
		if err != nil {
			errs[ji] = fmt.Errorf("%s: %w", ref.Base, err)
			return nil
		}
		verr := s.VerifyOptimalCtx(ctx, li.Meta.OptimalSwaps)
		stats := s.SolverStats()
		sp.ArgInt("conflicts", stats.Conflicts)
		sp.ArgInt("restarts", stats.Restarts)
		sp.ArgInt("learned", stats.Learned)
		if verr != nil {
			if ctx.Err() != nil {
				return verr
			}
			errs[ji] = fmt.Errorf("%s: %w", ref.Base, verr)
		}
		return nil
	})
	if poolErr != nil {
		fatal(budgetErr(ctx, poolErr, 0))
	}
	bad := 0
	for _, err := range errs {
		if err != nil {
			bad++
			fmt.Fprintln(os.Stderr, "qubikos-verify:", err)
		}
	}
	how := "exactly"
	if depthMetric {
		how = "by depth certificate"
	}
	fmt.Printf("%d/%d instances certified %s in %v\n",
		len(st.Instances)-bad, len(st.Instances), how, time.Since(t0).Round(time.Millisecond))
	if bad > 0 {
		os.Exit(1)
	}
}

func verifyFile(ctx context.Context, path, archName string, claim, maxK int) {
	devc, err := arch.ByName(archName)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	c, err := circuit.ParseQASM(f)
	if err != nil {
		fatal(err)
	}
	s, err := olsq.New(c, devc, olsq.Options{})
	if err != nil {
		fatal(err)
	}
	if claim >= 0 {
		if err := s.VerifyOptimalCtx(ctx, claim); err != nil {
			fatal(budgetErr(ctx, err, 0))
		}
		fmt.Printf("%s: optimal SWAP count is exactly %d (verified)\n", path, claim)
		return
	}
	res, err := s.MinSwapsCtx(ctx, maxK)
	if err != nil {
		fatal(budgetErr(ctx, err, 0))
	}
	fmt.Printf("%s: optimal SWAP count is %d (searched up to %d)\n", path, res.SwapCount, maxK)
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n < 1 {
			return nil, fmt.Errorf("bad grid value %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// budgetErr rewrites a cancellation-shaped error into a message that
// names its cause — an elapsed -timeout budget or an interrupt signal —
// instead of the bare "context deadline exceeded".
func budgetErr(ctx context.Context, err error, timeout time.Duration) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		if timeout > 0 {
			return fmt.Errorf("certification exceeded the -timeout budget %v", timeout)
		}
		return fmt.Errorf("certification exceeded its deadline: %w", err)
	case errors.Is(err, context.Canceled) && ctx.Err() != nil:
		return fmt.Errorf("interrupted; certification stopped cleanly")
	default:
		return err
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-verify:", err)
	os.Exit(1)
}
