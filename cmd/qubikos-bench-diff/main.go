// Command qubikos-bench-diff compares fresh `go test -bench` output
// against the committed BENCH_routers.json snapshot and fails when a
// benchmark's ns/op regresses beyond a threshold (default 25%), so
// routing-path perf regressions gate merges instead of relying on
// eyeballs over CI logs.
//
// The tool reads standard testing-package benchmark lines, strips the
// trailing -GOMAXPROCS suffix, and matches names against the snapshot's
// "benchmarks" map. Benchmarks present in the input but absent from the
// snapshot are ignored (the smoke may run a superset); snapshot entries
// absent from the input are ignored too (the smoke may run a subset).
// Timings are compared against the snapshot's "after" numbers. Alloc
// counts are reported but advisory only: worker goroutines make them
// vary with GOMAXPROCS, and CI runs the smoke at more than one setting.
//
// Snapshot numbers are recorded at a longer -benchtime than the CI
// smoke's -benchtime=1x, and CI machines differ from the recording
// machine, so the threshold is a coarse tripwire for order-of-magnitude
// mistakes (an accidental O(n^2), a lost cache), not a microbenchmark
// judge. Loosen it with -threshold on noisy runners.
//
// Usage:
//
//	go test -run xxx -bench 'BenchmarkQmapRoute|BenchmarkMlqlsRoute' -benchtime=1x . | qubikos-bench-diff
//	qubikos-bench-diff -snapshot BENCH_routers.json -input bench.txt -threshold 0.5
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

type stats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type entry struct {
	After stats `json:"after"`
}

type snapshot struct {
	Benchmarks map[string]entry `json:"benchmarks"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	name   string // with the -GOMAXPROCS suffix stripped
	ns     float64
	allocs float64
	hasAll bool // allocs/op was present (-benchmem)
}

// parseBenchLines extracts benchmark measurements from `go test -bench`
// output. Non-benchmark lines are skipped. When the same benchmark
// appears more than once (e.g. the smoke runs at two GOMAXPROCS
// settings), the slowest reading wins: the gate must hold at both.
func parseBenchLines(r io.Reader) ([]measurement, error) {
	best := map[string]measurement{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
			continue
		}
		ns, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			continue
		}
		m := measurement{name: stripProcs(f[0]), ns: ns}
		for i := 4; i+1 < len(f); i += 2 {
			if f[i+1] == "allocs/op" {
				if a, err := strconv.ParseFloat(f[i], 64); err == nil {
					m.allocs, m.hasAll = a, true
				}
			}
		}
		if prev, ok := best[m.name]; !ok || m.ns > prev.ns {
			best[m.name] = m
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]measurement, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

// stripProcs removes the trailing -N GOMAXPROCS suffix the testing
// package appends to benchmark names ("BenchmarkFoo/bar-8" -> ".../bar").
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func run(snapPath string, input io.Reader, threshold float64, w io.Writer) (failed bool, err error) {
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		return false, err
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return false, fmt.Errorf("%s: %w", snapPath, err)
	}
	fresh, err := parseBenchLines(input)
	if err != nil {
		return false, err
	}
	compared := 0
	for _, m := range fresh {
		ref, ok := snap.Benchmarks[m.name]
		if !ok || ref.After.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := m.ns / ref.After.NsPerOp
		verdict := "ok"
		if ratio > 1+threshold {
			verdict = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(w, "%-36s %14.0f ns/op  snapshot %14.0f  ratio %.2fx  %s\n",
			m.name, m.ns, ref.After.NsPerOp, ratio, verdict)
		if m.hasAll && ref.After.AllocsPerOp > 0 && m.allocs > ref.After.AllocsPerOp*(1+threshold) {
			fmt.Fprintf(w, "%-36s %14.0f allocs/op vs snapshot %.0f (advisory)\n",
				m.name, m.allocs, ref.After.AllocsPerOp)
		}
	}
	if compared == 0 {
		return true, fmt.Errorf("no benchmark in the input matched a snapshot entry")
	}
	return failed, nil
}

func main() {
	snapPath := flag.String("snapshot", "BENCH_routers.json", "committed benchmark snapshot to diff against")
	inPath := flag.String("input", "-", "benchmark output file ('-' reads stdin)")
	threshold := flag.Float64("threshold", 0.25, "allowed fractional ns/op regression before failing")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *inPath != "-" {
		f, err := os.Open(*inPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qubikos-bench-diff:", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	failed, err := run(*snapPath, in, *threshold, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qubikos-bench-diff:", err)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "qubikos-bench-diff: ns/op regression beyond %.0f%% vs %s\n",
			*threshold*100, *snapPath)
		os.Exit(1)
	}
}
