package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleSnapshot = `{
  "benchmarks": {
    "BenchmarkQmapRoute/eagle127": {
      "after": {"ns_per_op": 1000000, "bytes_per_op": 100, "allocs_per_op": 10}
    },
    "BenchmarkMlqlsRoute/aspen4": {
      "after": {"ns_per_op": 500000, "bytes_per_op": 100, "allocs_per_op": 10}
    }
  }
}`

func writeSnapshot(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "snap.json")
	if err := os.WriteFile(p, []byte(sampleSnapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStripProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkQmapRoute/eagle127-8": "BenchmarkQmapRoute/eagle127",
		"BenchmarkFigure4d-16":          "BenchmarkFigure4d",
		"BenchmarkFigure4d":             "BenchmarkFigure4d",
		"BenchmarkFoo/x-y":              "BenchmarkFoo/x-y",
	}
	for in, want := range cases {
		if got := stripProcs(in); got != want {
			t.Errorf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRunPassesWithinThreshold(t *testing.T) {
	snap := writeSnapshot(t)
	in := strings.NewReader(
		"goos: linux\n" +
			"BenchmarkQmapRoute/eagle127-4   1   1100000 ns/op   120 B/op   10 allocs/op\n" +
			"PASS\n")
	var out strings.Builder
	failed, err := run(snap, in, 0.25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("10%% slower flagged as regression at 25%% threshold:\n%s", out.String())
	}
}

func TestRunFailsBeyondThreshold(t *testing.T) {
	snap := writeSnapshot(t)
	in := strings.NewReader("BenchmarkQmapRoute/eagle127-4   1   1300000 ns/op\n")
	var out strings.Builder
	failed, err := run(snap, in, 0.25, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatalf("30%% slower not flagged at 25%% threshold:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report lacks REGRESSION marker:\n%s", out.String())
	}
}

func TestRunKeepsSlowestDuplicate(t *testing.T) {
	// The smoke runs at two GOMAXPROCS settings; the gate must hold at
	// the slower of the two readings.
	snap := writeSnapshot(t)
	in := strings.NewReader(
		"BenchmarkQmapRoute/eagle127     1   900000 ns/op\n" +
			"BenchmarkQmapRoute/eagle127-4   1   1400000 ns/op\n")
	failed, err := run(snap, in, 0.25, &strings.Builder{})
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("slow duplicate reading was masked by the fast one")
	}
}

func TestRunErrorsOnNoMatches(t *testing.T) {
	snap := writeSnapshot(t)
	in := strings.NewReader("BenchmarkUnknown-4   1   5 ns/op\n")
	if _, err := run(snap, in, 0.25, &strings.Builder{}); err == nil {
		t.Fatal("no-match input should error rather than pass vacuously")
	}
}
