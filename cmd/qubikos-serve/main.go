// Command qubikos-serve exposes the content-addressed benchmark-suite
// store over HTTP: clients POST a suite manifest — naming any registered
// benchmark family (qubikos-go/1 swap-optimal, queko-depth/1
// depth-optimal) — and receive the suite, generated on the first request
// and served bit-identically from cache on every later one; then fetch
// instance files or stream an evaluation as JSONL. An in-memory LRU
// keeps hot suites resident.
//
// On SIGTERM or SIGINT the server first flips /healthz/ready to 503
// (liveness at /healthz/live stays green) and keeps serving for
// -drain-grace so load balancers deroute it, then stops accepting
// connections and drains in-flight requests (generation and evaluation
// included) for up to -drain-timeout, exiting 0 — so rolling restarts
// never kill an evaluation mid-stream.
//
// Usage:
//
//	qubikos-serve -cache-dir /var/lib/qubikos -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/v1/families
//	curl -s -XPOST localhost:8080/v1/suites -d '{"device":"aspen4","swap_counts":[2],"circuits_per_count":1,"target_two_qubit_gates":40,"seed":1}'
//	curl -s -XPOST localhost:8080/v1/suites -d '{"generator":"queko-depth/1","device":"aspen4","depths":[8],"circuits_per_count":1,"target_two_qubit_gates":40,"seed":1}'
//	curl -s -XPOST "localhost:8080/v1/suites/<hash>/eval?tools=lightsabre&trials=4"
//	curl -s -XPOST localhost:8080/v1/route -d '{"suite":"<hash>","instance":"<base>","deadline_ms":2000,"threshold":1.2}'
//
// See docs/cli.md for the full endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/portfolio"
	"repro/internal/server"
	"repro/internal/suite"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "qubikos-cache", "suite store root directory")
	lruSuites := flag.Int("lru-suites", 8, "suites kept resident in memory")
	genWorkers := flag.Int("gen-workers", 0, "parallel generation workers per suite (0 = all CPUs)")
	evalWorkers := flag.Int("eval-workers", 1, "parallel evaluation workers per request")
	maxInstances := flag.Int("max-instances", 4096, "largest suite a single request may ask for")
	verify := flag.Bool("verify", false, "run the structural verifier on every generated instance")
	genTimeout := flag.Duration("gen-timeout", 0, "per-request budget for suite generation (0 = unlimited); over-budget requests get 503 + Retry-After")
	evalTimeout := flag.Duration("eval-timeout", 0, "per-request budget for evaluations (0 = unlimited); timed-out evaluations resume on retry")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests to finish")
	drainGrace := flag.Duration("drain-grace", time.Second, "how long readiness reports 503 before the listener closes, so load balancers can deroute")
	pprofAddr := flag.String("pprof-addr", "", "listen address for the net/http/pprof debug mux (empty = disabled)")
	peers := flag.String("peer", "", "comma-separated base URLs of peer replicas (http://host:port); missing suites are fetched from the first peer holding them, checksum-verified, before generating locally")
	metrics := flag.Bool("metrics", true, "expose Prometheus text metrics on /metrics")
	routeDeadline := flag.Duration("route-deadline", 30*time.Second, "cap on a POST /v1/route race budget; requests may ask for less, never more")
	routeHedge := flag.Duration("route-hedge", 100*time.Millisecond, "default hedge stagger between tool cost tiers for POST /v1/route")
	breakerTrip := flag.Int("breaker-trip", 3, "consecutive faults (timeout/panic/invalid) that trip a tool's circuit breaker open")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker waits before re-admitting the tool with a half-open probe")
	flag.Parse()

	// Profiling mux for perf work on live eval traffic: off by default,
	// and when enabled it listens on its own address (typically a
	// loopback port) so the debug surface is never exposed on the
	// serving address.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fatal(fmt.Errorf("pprof listen: %w", err))
		}
		fmt.Printf("qubikos-serve: pprof debug mux on %s\n", pln.Addr())
		go func() {
			if err := http.Serve(pln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "qubikos-serve: pprof mux:", err)
			}
		}()
	}

	var remotes []suite.Blob
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			remotes = append(remotes, suite.NewPeerBlob(p, nil))
		}
	}
	store, err := suite.Open(*cacheDir, suite.StoreOptions{Workers: *genWorkers, Verify: *verify, Remotes: remotes})
	if err != nil {
		fatal(err)
	}
	api := server.New(store, server.Options{
		LRUSuites:        *lruSuites,
		MaxInstances:     *maxInstances,
		EvalWorkers:      *evalWorkers,
		GenTimeout:       *genTimeout,
		EvalTimeout:      *evalTimeout,
		DisableMetrics:   !*metrics,
		RouteMaxDeadline: *routeDeadline,
		RouteHedgeDelay:  *routeHedge,
		Breakers: portfolio.BreakerConfig{
			TripAfter: *breakerTrip,
			Cooldown:  *breakerCooldown,
		},
	})
	srv := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Listen before installing the signal handler so the printed address
	// is always the live one (with ":0" the kernel picks the port).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("qubikos-serve: store %s, listening on %s\n", store.Root(), ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately via the default handler
		// Flip readiness red first and keep serving for the grace window:
		// load balancers see /healthz/ready go 503 and stop routing new
		// work before the listener disappears.
		api.StartDraining()
		fmt.Printf("qubikos-serve: signal received, readiness red; draining in-flight requests (grace %v, up to %v)\n",
			*drainGrace, *drainTimeout)
		time.Sleep(*drainGrace)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
			fatal(fmt.Errorf("drain deadline exceeded: %w", err))
		}
		fmt.Println("qubikos-serve: drained, exiting")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-serve:", err)
	os.Exit(1)
}
