// Command qubikos-serve exposes the content-addressed benchmark-suite
// store over HTTP: clients POST a suite manifest and receive the suite —
// generated on the first request, served bit-identically from cache on
// every later one — then fetch instance files or stream an evaluation as
// JSONL. An in-memory LRU keeps hot suites resident.
//
// Usage:
//
//	qubikos-serve -cache-dir /var/lib/qubikos -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -XPOST localhost:8080/v1/suites -d '{"device":"aspen4","swap_counts":[2],"circuits_per_count":1,"target_two_qubit_gates":40,"seed":1}'
//	curl -s -XPOST "localhost:8080/v1/suites/<hash>/eval?tools=lightsabre&trials=4"
//
// See docs/cli.md for the full endpoint reference.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"repro/internal/server"
	"repro/internal/suite"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "qubikos-cache", "suite store root directory")
	lruSuites := flag.Int("lru-suites", 8, "suites kept resident in memory")
	genWorkers := flag.Int("gen-workers", 0, "parallel generation workers per suite (0 = all CPUs)")
	evalWorkers := flag.Int("eval-workers", 1, "parallel evaluation workers per request")
	maxInstances := flag.Int("max-instances", 4096, "largest suite a single request may ask for")
	verify := flag.Bool("verify", false, "run the structural verifier on every generated instance")
	flag.Parse()

	store, err := suite.Open(*cacheDir, suite.StoreOptions{Workers: *genWorkers, Verify: *verify})
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(store, server.Options{LRUSuites: *lruSuites, MaxInstances: *maxInstances, EvalWorkers: *evalWorkers}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("qubikos-serve: store %s, listening on %s\n", store.Root(), *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-serve:", err)
	os.Exit(1)
}
