package main

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

var listenRE = regexp.MustCompile(`listening on (\S+)`)

// The shutdown contract, exercised against the real binary: readiness
// goes red on SIGTERM while liveness stays green for the whole grace
// window, and the process exits 0 once drained — the sequence a rolling
// restart depends on.
func TestServeDrainSequence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	bin := filepath.Join(t.TempDir(), "qubikos-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cache-dir", t.TempDir(),
		"-drain-grace", "2s",
		"-drain-timeout", "10s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The server prints its live address once the listener is up; with
	// :0 that line is the only way to learn the port.
	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if m := listenRE.FindStringSubmatch(sc.Text()); m != nil {
			addr = m[1]
			break
		}
	}
	if addr == "" {
		t.Fatalf("server never announced its address: %v", sc.Err())
	}
	// Drain the rest of stdout so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	base := "http://" + addr
	if strings.HasPrefix(addr, ":") {
		base = "http://127.0.0.1" + addr
	}

	status := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			return -1
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	waitFor := func(path string, want int) error {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if status(path) == want {
				return nil
			}
			time.Sleep(20 * time.Millisecond)
		}
		return fmt.Errorf("%s never reached %d", path, want)
	}

	if err := waitFor("/healthz/ready", http.StatusOK); err != nil {
		t.Fatalf("server never became ready: %v", err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Inside the grace window the listener is still up: readiness must
	// read 503 so load balancers deroute, liveness must stay 200 so
	// nothing restarts a healthy-but-draining process.
	if err := waitFor("/healthz/ready", http.StatusServiceUnavailable); err != nil {
		t.Fatalf("readiness never went red after SIGTERM: %v", err)
	}
	if got := status("/healthz/live"); got != http.StatusOK {
		t.Errorf("liveness during drain = %d, want 200", got)
	}

	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("clean drain exited non-zero: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Error("server never exited after SIGTERM")
	}
}
