// Command qubikos-gen generates QUBIKOS benchmark circuits with provably
// optimal SWAP counts. It has two modes:
//
// Loose-file mode (default) writes each instance as OpenQASM 2.0 plus a
// JSON metadata sidecar (optimal count, initial mapping, swap schedule)
// into -out, exactly as earlier releases did.
//
// Suite mode (-suite) writes a whole suite — the -swaps grid times
// -count instances — into the content-addressed store at -cache-dir and
// prints the suite's content hash. Re-running with the same parameters
// finds the stored suite and generates nothing; qubikos-eval,
// qubikos-verify and qubikos-serve consume the same store.
//
// Usage:
//
//	qubikos-gen -arch aspen4 -swaps 5 -gates 300 -count 10 -seed 1 -out bench/
//	qubikos-gen -arch grid3x3 -swaps 2 -max-gates 30 -prefer-high-degree -verify
//	qubikos-gen -suite -cache-dir cache -arch aspen4 -swaps 5,10,15,20 -gates 300 -count 10 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/qubikos"
	"repro/internal/suite"
)

func main() {
	archName := flag.String("arch", "aspen4", "device: aspen4, sycamore54, rochester53, eagle127, grid3x3")
	swaps := flag.String("swaps", "5", "provably optimal SWAP count, or a comma-separated grid")
	gates := flag.Int("gates", 300, "target two-qubit gate total (padding)")
	maxGates := flag.Int("max-gates", 0, "hard cap on two-qubit gates (0 = none)")
	oneQ := flag.Int("oneq", 0, "single-qubit gates to sprinkle in")
	count := flag.Int("count", 1, "number of circuits per swap count")
	seed := flag.Int64("seed", 1, "base random seed")
	out := flag.String("out", ".", "output directory (loose-file mode)")
	preferHigh := flag.Bool("prefer-high-degree", false, "bias sections toward max-degree qubits (smaller backbones)")
	verify := flag.Bool("verify", true, "run the structural verifier on each instance")
	suiteMode := flag.Bool("suite", false, "write a content-addressed suite into -cache-dir instead of loose files")
	cacheDir := flag.String("cache-dir", "qubikos-cache", "suite store root (suite mode)")
	workers := flag.Int("workers", 0, "parallel generation workers in suite mode (0 = all CPUs)")
	flag.Parse()

	counts, err := parseCounts(*swaps)
	if err != nil {
		fatal(err)
	}

	if *suiteMode {
		runSuiteMode(*cacheDir, *archName, counts, *count, qubikos.Options{
			TargetTwoQubitGates: *gates,
			MaxTwoQubitGates:    *maxGates,
			SingleQubitGates:    *oneQ,
			PreferHighDegree:    *preferHigh,
			Seed:                *seed,
		}, *workers, *verify)
		return
	}

	dev, err := arch.ByName(*archName)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	for _, n := range counts {
		for i := 0; i < *count; i++ {
			b, err := qubikos.Generate(dev, qubikos.Options{
				NumSwaps:            n,
				TargetTwoQubitGates: *gates,
				MaxTwoQubitGates:    *maxGates,
				SingleQubitGates:    *oneQ,
				PreferHighDegree:    *preferHigh,
				Seed:                *seed + int64(i),
			})
			if err != nil {
				fatal(err)
			}
			if *verify {
				if err := qubikos.Verify(b); err != nil {
					fatal(fmt.Errorf("instance %d failed verification: %w", i, err))
				}
			}
			base := fmt.Sprintf("qubikos_%s_s%d_g%d_i%03d", dev.Name(), n, b.Circuit.TwoQubitGateCount(), i)
			if _, err := qubikos.WriteInstance(*out, base, b); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s: %d qubits, %d gates (%d two-qubit), optimal swaps %d\n",
				base, b.Circuit.NumQubits, b.Circuit.NumGates(), b.Circuit.TwoQubitGateCount(), b.OptSwaps)
		}
	}
}

func runSuiteMode(cacheDir, archName string, counts []int, perCount int, opts qubikos.Options, workers int, verify bool) {
	store, err := suite.Open(cacheDir, suite.StoreOptions{Workers: workers, Verify: verify})
	if err != nil {
		fatal(err)
	}
	m := suite.NewManifest(archName, counts, perCount, opts)
	st, err := store.Ensure(m)
	if err != nil {
		fatal(err)
	}
	status := "generated"
	if st.Cached {
		status = "cache hit"
	}
	fmt.Printf("suite %s (%s)\n", st.Hash, status)
	fmt.Printf("  device=%s swap-grid=%v circuits-per-count=%d instances=%d\n",
		m.Device, m.SwapCounts, m.CircuitsPerCount, len(st.Instances))
	fmt.Printf("  dir: %s\n", st.Dir)
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad swap count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-gen:", err)
	os.Exit(1)
}
