// Command qubikos-gen generates benchmark circuits from any registered
// benchmark family: QUBIKOS circuits with provably optimal SWAP counts
// (the default), or QUEKO-style circuits with provably optimal routed
// depth (-family queko-depth). It has two modes:
//
// Loose-file mode (default) writes each instance as OpenQASM 2.0 plus a
// JSON metadata sidecar (family, known optimum, initial mapping, swap
// schedule) into -out, exactly as earlier releases did.
//
// Suite mode (-suite) writes a whole suite — the metric grid (-swaps or
// -depths) times -count instances — into the content-addressed store at
// -cache-dir and prints the suite's content hash. Re-running with the
// same parameters finds the stored suite and generates nothing;
// qubikos-eval, qubikos-verify and qubikos-serve consume the same store.
//
// Usage:
//
//	qubikos-gen -arch aspen4 -swaps 5 -gates 300 -count 10 -seed 1 -out bench/
//	qubikos-gen -arch grid3x3 -swaps 2 -max-gates 30 -prefer-high-degree -verify
//	qubikos-gen -suite -cache-dir cache -arch aspen4 -swaps 5,10,15,20 -gates 300 -count 10 -seed 1
//	qubikos-gen -suite -cache-dir cache -arch aspen4 -family queko-depth -depths 10,20 -gates 300 -count 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/family"
	"repro/internal/suite"
)

func main() {
	archName := flag.String("arch", "aspen4", "device: aspen4, sycamore54, rochester53, eagle127, grid3x3")
	famName := flag.String("family", "qubikos", "benchmark family: qubikos (optimal swaps) or queko-depth (optimal depth)")
	swaps := flag.String("swaps", "5", "provably optimal SWAP count, or a comma-separated grid (swap-metric families)")
	depths := flag.String("depths", "8", "provably optimal routed depth, or a comma-separated grid (depth-metric families)")
	gates := flag.Int("gates", 300, "target two-qubit gate total (padding)")
	maxGates := flag.Int("max-gates", 0, "hard cap on two-qubit gates (0 = none)")
	oneQ := flag.Int("oneq", 0, "single-qubit gates to sprinkle in")
	count := flag.Int("count", 1, "number of circuits per grid value")
	seed := flag.Int64("seed", 1, "base random seed")
	out := flag.String("out", ".", "output directory (loose-file mode)")
	preferHigh := flag.Bool("prefer-high-degree", false, "bias qubikos sections toward max-degree qubits (smaller backbones)")
	verify := flag.Bool("verify", true, "run the family's structural verifier on each instance")
	suiteMode := flag.Bool("suite", false, "write a content-addressed suite into -cache-dir instead of loose files")
	cacheDir := flag.String("cache-dir", "qubikos-cache", "suite store root (suite mode)")
	workers := flag.Int("workers", 0, "parallel generation workers in suite mode (0 = all CPUs)")
	flag.Parse()

	fam, err := family.Resolve(*famName)
	if err != nil {
		fatal(err)
	}
	gridFlag := *swaps
	if fam.Metric == family.Depth {
		gridFlag = *depths
	}
	grid, err := parseGrid(gridFlag, fam.MinOptimal)
	if err != nil {
		fatal(err)
	}

	opts := family.Options{
		TargetTwoQubitGates: *gates,
		MaxTwoQubitGates:    *maxGates,
		SingleQubitGates:    *oneQ,
		PreferHighDegree:    *preferHigh,
		Seed:                *seed,
	}

	if *suiteMode {
		runSuiteMode(*cacheDir, fam, *archName, grid, *count, opts, *workers, *verify)
		return
	}

	dev, err := arch.ByName(*archName)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	for _, n := range grid {
		for i := 0; i < *count; i++ {
			instOpts := opts
			instOpts.Optimal = n
			instOpts.Seed = *seed + int64(i)
			inst, err := fam.Generate(dev, instOpts)
			if err != nil {
				fatal(err)
			}
			if *verify {
				if err := inst.Verify(); err != nil {
					fatal(fmt.Errorf("instance %d failed verification: %w", i, err))
				}
			}
			prefix := "qubikos"
			if fam.Metric == family.Depth {
				prefix = "queko"
			}
			base := fmt.Sprintf("%s_%s_%s%d_g%d_i%03d",
				prefix, dev.Name(), metricTag(fam.Metric), n, inst.Circuit.TwoQubitGateCount(), i)
			if _, err := family.WriteInstance(*out, base, inst); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s: %d qubits, %d gates (%d two-qubit), optimal %s %d\n",
				base, inst.Circuit.NumQubits, inst.Circuit.NumGates(),
				inst.Circuit.TwoQubitGateCount(), fam.Metric, inst.Optimal)
		}
	}
}

func metricTag(m family.Metric) string {
	if m == family.Depth {
		return "d"
	}
	return "s"
}

func runSuiteMode(cacheDir string, fam *family.Family, archName string, grid []int, perCount int, opts family.Options, workers int, verify bool) {
	store, err := suite.Open(cacheDir, suite.StoreOptions{Workers: workers, Verify: verify})
	if err != nil {
		fatal(err)
	}
	m := suite.NewFamilyManifest(fam.ID, archName, grid, perCount, opts)
	st, err := store.Ensure(m)
	if err != nil {
		fatal(err)
	}
	status := "generated"
	if st.Cached {
		status = "cache hit"
	}
	fmt.Printf("suite %s (%s)\n", st.Hash, status)
	fmt.Printf("  family=%s metric=%s device=%s grid=%v circuits-per-count=%d instances=%d\n",
		m.Generator, st.Metric, m.Device, m.Grid(), m.CircuitsPerCount, len(st.Instances))
	fmt.Printf("  dir: %s\n", st.Dir)
}

func parseGrid(s string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < min {
			return nil, fmt.Errorf("bad grid value %q (minimum %d)", part, min)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-gen:", err)
	os.Exit(1)
}
