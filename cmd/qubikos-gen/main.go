// Command qubikos-gen generates QUBIKOS benchmark circuits with provably
// optimal SWAP counts and writes them as OpenQASM 2.0 plus a JSON
// metadata sidecar (optimal count, initial mapping, swap schedule).
//
// Usage:
//
//	qubikos-gen -arch aspen4 -swaps 5 -gates 300 -count 10 -seed 1 -out bench/
//	qubikos-gen -arch grid3x3 -swaps 2 -max-gates 30 -prefer-high-degree -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/qubikos"
)

func main() {
	archName := flag.String("arch", "aspen4", "device: aspen4, sycamore54, rochester53, eagle127, grid3x3")
	swaps := flag.Int("swaps", 5, "provably optimal SWAP count")
	gates := flag.Int("gates", 300, "target two-qubit gate total (padding)")
	maxGates := flag.Int("max-gates", 0, "hard cap on two-qubit gates (0 = none)")
	oneQ := flag.Int("oneq", 0, "single-qubit gates to sprinkle in")
	count := flag.Int("count", 1, "number of circuits")
	seed := flag.Int64("seed", 1, "base random seed")
	out := flag.String("out", ".", "output directory")
	preferHigh := flag.Bool("prefer-high-degree", false, "bias sections toward max-degree qubits (smaller backbones)")
	verify := flag.Bool("verify", true, "run the structural verifier on each instance")
	flag.Parse()

	dev, err := arch.ByName(*archName)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}

	for i := 0; i < *count; i++ {
		b, err := qubikos.Generate(dev, qubikos.Options{
			NumSwaps:            *swaps,
			TargetTwoQubitGates: *gates,
			MaxTwoQubitGates:    *maxGates,
			SingleQubitGates:    *oneQ,
			PreferHighDegree:    *preferHigh,
			Seed:                *seed + int64(i),
		})
		if err != nil {
			fatal(err)
		}
		if *verify {
			if err := qubikos.Verify(b); err != nil {
				fatal(fmt.Errorf("instance %d failed verification: %w", i, err))
			}
		}
		base := fmt.Sprintf("qubikos_%s_s%d_g%d_i%03d", dev.Name(), *swaps, b.Circuit.TwoQubitGateCount(), i)
		if _, err := qubikos.WriteInstance(*out, base, b); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: %d qubits, %d gates (%d two-qubit), optimal swaps %d\n",
			base, b.Circuit.NumQubits, b.Circuit.NumGates(), b.Circuit.TwoQubitGateCount(), b.OptSwaps)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-gen:", err)
	os.Exit(1)
}
