// Command qubikos-loadtest hammers one or more qubikos-serve replicas
// with a deterministic concurrent mix of cache hits, generation misses,
// conditional GETs, archive pulls, abandoned streams, and (optionally)
// evaluations and portfolio route races, then reports what came back and
// cross-checks the fleet's store counters.
//
// Usage:
//
//	qubikos-loadtest -target http://localhost:8080 -n 2000 -c 32
//	qubikos-loadtest -target http://a:8080,http://b:8080 -expect-generations 1
//
// The exit status encodes the verdict: 0 all requests clean, 1 requests
// failed (5xx or transport errors), 2 fleet-level invariant violated
// (-expect-generations mismatch).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/loadtest"
)

// defaultManifests are two small suites (distinct seeds, so distinct
// hashes) that generate in well under a second each.
var defaultManifests = []string{
	`{"device":"grid3x3","swap_counts":[1,2],"circuits_per_count":2,"target_two_qubit_gates":15,"seed":9}`,
	`{"device":"grid3x3","swap_counts":[1],"circuits_per_count":2,"target_two_qubit_gates":15,"seed":10}`,
}

func main() {
	targets := flag.String("target", "http://localhost:8080", "comma-separated base URLs of the replicas to drive")
	total := flag.Int("n", 1000, "mixed requests to issue after warm-up")
	conc := flag.Int("c", 16, "concurrent workers")
	seed := flag.Int64("seed", 1, "request-mix seed (replays are exact)")
	manifest := flag.String("manifest", "", "manifest to exercise: inline JSON (one manifest) or a comma-separated list of @file references; default: two built-in small suites")
	tools := flag.String("tools", "", "tools parameter for the eval and route request classes (empty = no evals, all tools for routes)")
	trials := flag.Int("trials", 1, "trials parameter for eval requests")
	route := flag.Bool("route", false, "include POST /v1/route portfolio races in the mix")
	routeDeadline := flag.Duration("route-deadline", 2*time.Second, "per-race deadline for route requests")
	routeThreshold := flag.Float64("route-threshold", 0, "early-win ratio vs the proven optimum for route requests (0 = race to completion)")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall run budget")
	expectGen := flag.Int("expect-generations", -1, "assert the fleet's total SuitesGenerated equals this after the run (-1 = don't)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	cfg := loadtest.Config{
		Total:           *total,
		Concurrency:     *conc,
		Seed:            *seed,
		Tools:           *tools,
		EvalTrials:      *trials,
		Route:           *route,
		RouteDeadlineMS: int(routeDeadline.Milliseconds()),
		RouteThreshold:  *routeThreshold,
	}
	for _, t := range strings.Split(*targets, ",") {
		if t = strings.TrimSpace(t); t != "" {
			cfg.Targets = append(cfg.Targets, strings.TrimRight(t, "/"))
		}
	}
	cfg.Manifests = defaultManifests
	if m := strings.TrimSpace(*manifest); m != "" {
		cfg.Manifests = nil
		if strings.HasPrefix(m, "{") {
			// Inline JSON is one manifest — it contains commas, so the
			// comma-list form is @file references only.
			cfg.Manifests = []string{m}
		} else {
			for _, ref := range strings.Split(m, ",") {
				ref = strings.TrimSpace(ref)
				body, ok := strings.CutPrefix(ref, "@")
				if !ok {
					fatal(fmt.Errorf("-manifest entry %q: want inline JSON ({...}) or @file", ref))
				}
				raw, err := os.ReadFile(body)
				if err != nil {
					fatal(err)
				}
				cfg.Manifests = append(cfg.Manifests, string(raw))
			}
		}
	}

	rep, err := loadtest.Run(ctx, cfg)
	if err != nil {
		fatal(err)
	}

	out := map[string]any{"report": rep}
	var totalGen int64
	stats := map[string]loadtest.StoreStats{}
	for _, t := range cfg.Targets {
		st, err := loadtest.FetchStats(ctx, nil, t)
		if err != nil {
			fatal(fmt.Errorf("fetch stats from %s: %w", t, err))
		}
		stats[t] = st
		totalGen += st.SuitesGenerated
	}
	out["stats"] = stats
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(out)

	// Human-readable latency digest goes to stderr so stdout stays pure
	// JSON for scripted consumers.
	if len(rep.Latency) > 0 {
		fmt.Fprintln(os.Stderr, "client-observed latency per class:")
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		for _, class := range rep.SortedClasses() {
			l, ok := rep.Latency[class]
			if !ok {
				continue
			}
			fmt.Fprintf(os.Stderr, "  %-11s n=%-5d p50=%9.2fms p95=%9.2fms p99=%9.2fms max=%9.2fms\n",
				class, l.Count, ms(l.P50), ms(l.P95), ms(l.P99), ms(l.Max))
		}
	}

	if rep.FailureCount > 0 {
		fmt.Fprintf(os.Stderr, "qubikos-loadtest: %d failed requests\n", rep.FailureCount)
		os.Exit(1)
	}
	if *expectGen >= 0 && totalGen != int64(*expectGen) {
		fmt.Fprintf(os.Stderr, "qubikos-loadtest: fleet generated %d suites, expected exactly %d\n", totalGen, *expectGen)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qubikos-loadtest:", err)
	os.Exit(1)
}
